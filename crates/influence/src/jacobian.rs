//! Influence-matrix construction: three routes to `I₂` (Eqs. 3–4).

use gvex_gnn::propagation::NormAdj;
use gvex_gnn::GcnModel;
use gvex_graph::Graph;
use gvex_linalg::Matrix;
use rand::Rng;

/// How to estimate the expected-Jacobian influence scores.
#[derive(Clone, Copy, Debug, PartialEq)]
#[derive(Default)]
pub enum InfluenceMode {
    /// Row-normalized `Ã^k` — exactly the expected Jacobian of a `k`-layer
    /// ReLU GCN up to a per-row constant that `I₂`'s normalization cancels
    /// (Xu et al., ICML'18). Cost `O(k·|E|·|V|)`; the default.
    Expected,
    /// The realized Jacobian under the trained weights and actual ReLU
    /// gates, via forward-mode propagation of per-(node, feature) seeds.
    /// Cost `O(|V|·D·k·(|E|·h + |V|·h²))` — the expensive exact option used
    /// for validation and the ablation bench.
    Realized,
    /// Monte-Carlo random-walk estimate with the given number of walks per
    /// node — the paper's technique for its largest graphs (§6.2).
    MonteCarlo {
        /// Walks sampled per source node.
        walks: u32,
    },
    /// The paper's overall strategy: the exact Jacobian where affordable
    /// (it is the `O(|V|³)` precompute of Theorem 4.1), falling back to the
    /// walk-based surrogate on large graphs (§6.2's optimization for
    /// PRO/SYN). The switch happens at `|V|·D` forward-mode seeds > 2048 or
    /// `|V|` > 256.
    #[default]
    Auto,
}


/// Computes the row-stochastic influence matrix `I₂`, with `I₂[(v, u)]`
/// the normalized influence of `u` on `v` (Eq. 4). Every row sums to 1
/// (rows of isolated nodes concentrate on the self-loop).
///
/// `rng` is only consulted in [`InfluenceMode::MonteCarlo`].
pub fn influence_matrix(model: &GcnModel, g: &Graph, mode: InfluenceMode, rng: &mut impl Rng) -> Matrix {
    let k = model.config().layers;
    match mode {
        InfluenceMode::Expected => expected(g, k),
        InfluenceMode::Realized => realized(model, g),
        InfluenceMode::MonteCarlo { walks } => monte_carlo(g, k, walks, rng),
        InfluenceMode::Auto => {
            let seeds = g.num_nodes() * model.config().input_dim;
            if g.num_nodes() <= 256 && seeds <= 2048 {
                realized(model, g)
            } else {
                expected(g, k)
            }
        }
    }
}

/// Row-normalizes `m` in place; all-zero rows become the indicator of the
/// diagonal entry (a node always influences itself).
fn normalize_rows(mut m: Matrix) -> Matrix {
    for v in 0..m.rows() {
        let sum: f32 = m.row(v).iter().map(|x| x.abs()).sum();
        if sum > 0.0 {
            for x in m.row_mut(v) {
                *x = x.abs() / sum;
            }
        } else {
            m[(v, v)] = 1.0;
        }
    }
    m
}

fn expected(g: &Graph, k: usize) -> Matrix {
    let n = g.num_nodes();
    let adj = NormAdj::new(g);
    // R = Ã^k computed as k sparse-dense products against I.
    let mut r = Matrix::identity(n);
    for _ in 0..k {
        r = adj.matmul(&r);
    }
    normalize_rows(r)
}

#[allow(clippy::needless_range_loop)] // layer index parallels gates/pre/weights
fn realized(model: &GcnModel, g: &Graph) -> Matrix {
    let n = g.num_nodes();
    let d = model.config().input_dim;
    let trace = model.forward(g);
    let adj = &trace.adj;
    let k = model.config().layers;

    // ReLU gate masks per layer.
    let gates: Vec<Matrix> = trace.pre.iter().map(|z| z.map(|x| if x > 0.0 { 1.0 } else { 0.0 })).collect();

    let mut i1 = Matrix::zeros(n, n); // i1[(v, u)] = ‖∂X_v^k/∂X_u^0‖₁
    // forward-mode: seed ∂X/∂X_u[d] = e_u e_dᵀ and push through the layers.
    for u in 0..n {
        for dim in 0..d {
            let mut t = Matrix::zeros(n, d);
            t[(u, dim)] = 1.0;
            for layer in 0..k {
                let propagated = adj.matmul(&t);
                let z = propagated.matmul(model.conv_weight(layer));
                t = z.hadamard(&gates[layer]);
            }
            for v in 0..n {
                i1[(v, u)] += t.row_l1(v);
            }
        }
    }
    normalize_rows(i1)
}

fn monte_carlo(g: &Graph, k: usize, walks: u32, rng: &mut impl Rng) -> Matrix {
    let n = g.num_nodes();
    let mut counts = Matrix::zeros(n, n);
    // Walk on the self-looped, symmetrized graph (the GCN's receptive field).
    for v in 0..n {
        for _ in 0..walks.max(1) {
            let mut cur = v;
            for _ in 0..k {
                // neighbors + self loop, uniform choice (degree-proportional
                // approximation of Ã's support).
                let out = g.neighbors(cur);
                let inn = if g.is_directed() { g.in_neighbors(cur) } else { &[] };
                let deg = out.len() + inn.len();
                let pick = rng.gen_range(0..=deg);
                cur = if pick == deg {
                    cur // self loop
                } else if pick < out.len() {
                    out[pick].0
                } else {
                    inn[pick - out.len()].0
                };
            }
            counts[(v, cur)] += 1.0;
        }
    }
    normalize_rows(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvex_gnn::GcnConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path(n: usize, d: usize) -> Graph {
        let mut b = Graph::builder(false);
        for i in 0..n {
            let mut f = vec![0.0; d];
            f[i % d] = 1.0;
            b.add_node(0, &f);
        }
        for i in 1..n {
            b.add_edge(i - 1, i, 0);
        }
        b.build()
    }

    fn model(layers: usize, d: usize) -> GcnModel {
        let cfg = GcnConfig { input_dim: d, hidden: 6, layers, num_classes: 2 };
        GcnModel::new(cfg, &mut ChaCha8Rng::seed_from_u64(5))
    }

    #[test]
    fn expected_rows_are_stochastic() {
        let g = path(6, 2);
        let m = model(3, 2);
        let inf = influence_matrix(&m, &g, InfluenceMode::Expected, &mut ChaCha8Rng::seed_from_u64(0));
        for v in 0..6 {
            let s: f32 = inf.row(v).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {v} sums to {s}");
            assert!(inf.row(v).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn expected_influence_decays_with_distance() {
        let g = path(7, 2);
        let m = model(2, 2);
        let inf = influence_matrix(&m, &g, InfluenceMode::Expected, &mut ChaCha8Rng::seed_from_u64(0));
        // node 0's influence on node 3 (distance 3 > k=2) must be zero,
        // on node 1 positive and larger than on node 2.
        assert_eq!(inf[(3, 0)], 0.0);
        assert!(inf[(1, 0)] > inf[(2, 0)]);
        assert!(inf[(2, 0)] > 0.0);
    }

    #[test]
    fn realized_agrees_with_expected_support() {
        // realized Jacobian must vanish outside the k-hop neighborhood too
        let g = path(7, 2);
        let m = model(2, 2);
        let inf = influence_matrix(&m, &g, InfluenceMode::Realized, &mut ChaCha8Rng::seed_from_u64(0));
        assert_eq!(inf[(4, 0)], 0.0);
        for v in 0..7 {
            let s: f32 = inf.row(v).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    /// The realized Jacobian must match central finite differences of the
    /// actual network output w.r.t. an input feature entry (up to the L1
    /// aggregation): spot-check one (v, u) pair's sensitivity ordering.
    #[test]
    fn realized_matches_finite_difference() {
        let g = path(4, 2);
        let m = model(2, 2);
        // analytic: unnormalized L1 via realized(); recompute here directly
        let inf = realized(&m, &g);
        // finite difference of sum|X_v^k| wrt X_u feature 0:
        let eps = 1e-2_f32;
        let u = 0usize;
        let v = 1usize;
        let adj = gvex_gnn::propagation::NormAdj::new(&g);
        let perturb = |delta: f32| {
            let mut x = g.features().clone();
            x[(u, 0)] += delta;
            let t = m.forward_from_features(x, adj.clone());
            t.embeddings().row(v).to_vec()
        };
        let plus = perturb(eps);
        let minus = perturb(-eps);
        let fd: f32 = plus.iter().zip(&minus).map(|(p, q)| ((p - q) / (2.0 * eps)).abs()).sum();
        // realized() normalizes rows, so compare *signs of presence* only:
        assert_eq!(fd > 1e-4, inf[(v, u)] > 1e-6, "fd {fd} vs inf {}", inf[(v, u)]);
    }

    #[test]
    fn monte_carlo_rows_stochastic_and_local() {
        let g = path(8, 2);
        let m = model(2, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let inf = influence_matrix(&m, &g, InfluenceMode::MonteCarlo { walks: 200 }, &mut rng);
        for v in 0..8 {
            let s: f32 = inf.row(v).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
        // walks of length 2 cannot reach distance 3+
        assert_eq!(inf[(0, 5)], 0.0);
    }

    #[test]
    fn isolated_node_self_influence() {
        let mut b = Graph::builder(false);
        b.add_node(0, &[1.0]);
        b.add_node(0, &[1.0]);
        let g = b.build();
        let m = model(2, 1);
        let inf = influence_matrix(&m, &g, InfluenceMode::Expected, &mut ChaCha8Rng::seed_from_u64(0));
        assert!((inf[(0, 0)] - 1.0).abs() < 1e-6);
        assert_eq!(inf[(0, 1)], 0.0);
    }
}
