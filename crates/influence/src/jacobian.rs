//! Influence-matrix construction: three routes to `I₂` (Eqs. 3–4).

use gvex_gnn::propagation::NormAdj;
use gvex_gnn::{ForwardTrace, GcnModel};
use gvex_graph::{Graph, GraphRef};
use gvex_linalg::kernels::accumulate_row_sum;
use gvex_linalg::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// How to estimate the expected-Jacobian influence scores.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum InfluenceMode {
    /// Row-normalized `Ã^k` — exactly the expected Jacobian of a `k`-layer
    /// ReLU GCN up to a per-row constant that `I₂`'s normalization cancels
    /// (Xu et al., ICML'18). Cost `O(k·|E|·|V|)`; the default.
    Expected,
    /// The realized Jacobian under the trained weights and actual ReLU
    /// gates, via forward-mode propagation of per-(node, feature) seeds.
    /// Cost `O(|V|·D·k·(|E|·h + |V|·h²))` — the expensive exact option used
    /// for validation and the ablation bench. Seeds propagate in batches
    /// ([`realized`]) rather than one at a time.
    Realized,
    /// Monte-Carlo random-walk estimate with the given number of walks per
    /// node — the paper's technique for its largest graphs (§6.2).
    MonteCarlo {
        /// Walks sampled per source node.
        walks: u32,
    },
    /// The paper's overall strategy: the exact Jacobian where affordable
    /// (it is the `O(|V|³)` precompute of Theorem 4.1), falling back to the
    /// walk-based surrogate on large graphs (§6.2's optimization for
    /// PRO/SYN). The switch happens at `|V|·D` forward-mode seeds > 2048 or
    /// `|V|` > 256.
    #[default]
    Auto,
}

/// Computes the row-stochastic influence matrix `I₂`, with `I₂[(v, u)]`
/// the normalized influence of `u` on `v` (Eq. 4). Every row sums to 1
/// (rows of isolated nodes concentrate on the self-loop).
///
/// `rng` is only consulted in [`InfluenceMode::MonteCarlo`].
///
/// `g` is a `&Graph` or a borrowed [`GraphRef`] view; the expected and
/// realized routes consume the view zero-copy.
pub fn influence_matrix<'a>(
    model: &GcnModel,
    g: impl Into<GraphRef<'a>>,
    mode: InfluenceMode,
    rng: &mut impl Rng,
) -> Matrix {
    let g = g.into();
    let k = model.config().layers;
    match mode {
        InfluenceMode::Expected => expected(&g, k),
        InfluenceMode::Realized => realized(model, &g),
        InfluenceMode::MonteCarlo { walks } => monte_carlo(&g.as_graph(), k, walks, rng),
        InfluenceMode::Auto => {
            if auto_prefers_realized(model, &g) {
                realized(model, &g)
            } else {
                expected(&g, k)
            }
        }
    }
}

/// Like [`influence_matrix`] but reusing an existing forward `trace` of `g`
/// (its propagation operator and ReLU gates), so call sites that already
/// ran inference — the explain pipeline always has — don't pay for another
/// forward pass in the realized-Jacobian modes.
pub fn influence_matrix_with_trace<'a>(
    model: &GcnModel,
    g: impl Into<GraphRef<'a>>,
    trace: &ForwardTrace,
    mode: InfluenceMode,
    rng: &mut impl Rng,
) -> Matrix {
    let g = g.into();
    let k = model.config().layers;
    match mode {
        InfluenceMode::Expected => expected(&g, k),
        InfluenceMode::Realized => realized_with_trace(model, &g, trace),
        InfluenceMode::MonteCarlo { walks } => monte_carlo(&g.as_graph(), k, walks, rng),
        InfluenceMode::Auto => {
            if auto_prefers_realized(model, &g) {
                realized_with_trace(model, &g, trace)
            } else {
                expected(&g, k)
            }
        }
    }
}

/// [`InfluenceMode::Auto`]'s switch: the exact Jacobian where affordable.
fn auto_prefers_realized(model: &GcnModel, g: &GraphRef<'_>) -> bool {
    let seeds = g.num_nodes() * model.config().input_dim;
    g.num_nodes() <= 256 && seeds <= 2048
}

/// Row-normalizes `m` in place; all-zero rows become the indicator of the
/// diagonal entry (a node always influences itself).
fn normalize_rows(mut m: Matrix) -> Matrix {
    for v in 0..m.rows() {
        let sum: f32 = m.row(v).iter().map(|x| x.abs()).sum();
        if sum > 0.0 {
            for x in m.row_mut(v) {
                *x = x.abs() / sum;
            }
        } else {
            m[(v, v)] = 1.0;
        }
    }
    m
}

fn expected(g: &GraphRef<'_>, k: usize) -> Matrix {
    let n = g.num_nodes();
    let adj = NormAdj::new(g);
    // R = Ã^k computed as k sparse-dense products against I.
    let mut r = Matrix::identity(n);
    for _ in 0..k {
        r = adj.matmul(&r);
    }
    normalize_rows(r)
}

/// Seeds propagated per batch by [`realized`]. Bounds peak memory at
/// `SEED_BATCH · |V| · max(D, h)` floats and keeps each batch's working set
/// cache-sized regardless of `|V|·D`.
const SEED_BATCH: usize = 32;

/// Realized-Jacobian influence via **batched** forward-mode propagation.
///
/// All `|V|·D` seeds — or [`SEED_BATCH`] of them at a time — are stacked as
/// consecutive `n`-row blocks of one tall matrix, so each GCN layer becomes
/// one dense product against the shared layer weight, one blocked sparse
/// product, and one ReLU-gating sweep, instead of `|V|·D` separate small
/// propagations. A seed's derivative block is moreover zero outside the
/// seed node's `l`-hop neighbourhood after `l` layers, and those
/// neighbourhoods are precomputed once per call ([`hop_supports`]), so
/// every stage touches only its live rows — no per-call sparsity census,
/// no zeroing of rows that stay dead. Numerically this agrees with
/// [`realized_reference`] to FMA/reassociation rounding (≪ 1e-5; pinned by
/// the differential property tests), and the result is independent of the
/// rayon thread count (blocks are single-writer with a fixed per-row
/// accumulation order).
pub fn realized<'a>(model: &GcnModel, g: impl Into<GraphRef<'a>>) -> Matrix {
    let g = g.into();
    let trace = model.forward(&g);
    realized_with_trace(model, &g, &trace)
}

/// Per-node hop neighbourhoods of the propagation operator:
/// `out[l][u]` is the sorted list of nodes reachable from `u` in at most
/// `l` steps of `adj` (self-loops included), for `l = 0 ..= k`. This is the
/// exact support of `∂X^l/∂X_u` — the rows the batched Jacobian computes.
fn hop_supports(adj: &NormAdj, k: usize) -> Vec<Vec<Vec<usize>>> {
    let n = adj.len();
    let mut hops: Vec<Vec<Vec<usize>>> = Vec::with_capacity(k + 1);
    hops.push((0..n).map(|u| vec![u]).collect());
    let mut seen = vec![false; n];
    for l in 0..k {
        let next: Vec<Vec<usize>> = (0..n)
            .map(|u| {
                let mut grown = Vec::new();
                for &w in &hops[l][u] {
                    for &(v, _) in adj.row(w) {
                        if !seen[v] {
                            seen[v] = true;
                            grown.push(v);
                        }
                    }
                }
                grown.sort_unstable();
                for &v in &grown {
                    seen[v] = false;
                }
                grown
            })
            .collect();
        hops.push(next);
    }
    hops
}

/// [`realized`] reusing a precomputed forward trace of `g`.
pub fn realized_with_trace<'a>(
    model: &GcnModel,
    g: impl Into<GraphRef<'a>>,
    trace: &ForwardTrace,
) -> Matrix {
    gvex_obs::span!("influence.realized");
    let n = g.into().num_nodes();
    let d = model.config().input_dim;
    if n == 0 || d == 0 {
        return normalize_rows(Matrix::zeros(n, n));
    }
    let adj = &*trace.adj;
    let k = model.config().layers;
    let hops = hop_supports(adj, k);
    // membership[l][u] = bool mask of hops[l][u]; filters neighbour gathers
    // so rows of the unzeroed scratch that layer `l` never computed are
    // never read.
    let membership: Vec<Vec<Vec<bool>>> = hops[..k]
        .iter()
        .map(|per_node| {
            per_node
                .iter()
                .map(|sup| {
                    let mut mask = vec![false; n];
                    for &v in sup {
                        mask[v] = true;
                    }
                    mask
                })
                .collect()
        })
        .collect();

    // ReLU gate masks per layer.
    let gates: Vec<Matrix> =
        trace.pre.iter().map(|z| z.map(|x| if x > 0.0 { 1.0 } else { 0.0 })).collect();

    let mut i1 = Matrix::zeros(n, n); // i1[(v, u)] = ‖∂X_v^k/∂X_u^0‖₁
    let total_seeds = n * d;
    // One adaptive decision for every stage of every batch: a full batch
    // touches ~ batch · n · h² scalars per layer. Tiny graphs run all
    // stages on the calling thread; the per-block kernels are identical
    // either way, so the choice cannot change any bit of the result.
    let h_max = (0..k).map(|l| model.conv_weight(l).cols()).max().unwrap_or(1);
    let fan_out = rayon::should_fan_out(SEED_BATCH.min(total_seeds) * n * h_max * h_max * k);
    let mut first_seed = 0;
    // Three scratch matrices ping-pong across every layer of every batch,
    // reusing their allocations. Entries outside each block's hop support
    // are stale garbage from earlier batches — the support lists and
    // membership masks guarantee they are never read.
    let mut t = Matrix::zeros(0, 0);
    let mut propagated = Matrix::zeros(0, 0);
    let mut z = Matrix::zeros(0, 0);
    while first_seed < total_seeds {
        let batch = SEED_BATCH.min(total_seeds - first_seed);
        gvex_obs::counter!("influence.jacobian.seed_batches");
        gvex_obs::counter!("influence.jacobian.seeds", batch as u64);
        gvex_obs::histogram!("influence.jacobian.batch_seeds", batch as u64);
        let seed_node = |b: usize| (first_seed + b) / d;
        // seed s = u·d + dim starts as the block e_u e_dimᵀ; only the seed
        // row needs defined contents at layer 0.
        t.reset_reused(batch * n, d);
        for b in 0..batch {
            let s = first_seed + b;
            let row = t.row_mut(b * n + s / d);
            row.fill(0.0);
            row[s % d] = 1.0;
        }
        for layer in 0..k {
            let w = model.conv_weight(layer);
            let h = w.cols();
            // Dense stage: Z = T·W on each block's l-hop support rows,
            // with the reference kernel's per-element zero skip (gating
            // zeroes about half of every live row).
            z.reset_reused(batch * n, h);
            {
                let t_src = t.as_slice();
                let t_cols = t.cols();
                let dense_stage = |(b, chunk): (usize, &mut [f32])| {
                    let mut terms: Vec<(usize, f32)> = Vec::new();
                    for &u in &hops[layer][seed_node(b)] {
                        let t_row = &t_src[(b * n + u) * t_cols..(b * n + u + 1) * t_cols];
                        // gating zeroes about half of every live row; skip
                        // the dead entries exactly like the reference kernel
                        terms.clear();
                        terms.extend(
                            t_row
                                .iter()
                                .enumerate()
                                .filter(|&(_, &a)| a != 0.0)
                                .map(|(kk, &a)| (kk, a)),
                        );
                        accumulate_row_sum(&mut chunk[u * h..(u + 1) * h], w.as_slice(), &terms, h);
                    }
                };
                if fan_out {
                    z.as_mut_slice().par_chunks_mut(n * h).enumerate().for_each(dense_stage);
                } else {
                    for pair in z.as_mut_slice().chunks_mut(n * h).enumerate() {
                        dense_stage(pair);
                    }
                }
            }
            // Sparse + gate stage: P = gate ⊙ (Ã·Z), computed only on the
            // (l+1)-hop support rows, gathering only in-support neighbours.
            propagated.reset_reused(batch * n, h);
            {
                let z_src = z.as_slice();
                let gate = &gates[layer];
                let sparse_stage = |(b, chunk): (usize, &mut [f32])| {
                    let node = seed_node(b);
                    let mask = &membership[layer][node];
                    let z_block = &z_src[b * n * h..(b + 1) * n * h];
                    let mut terms: Vec<(usize, f32)> = Vec::new();
                    for &u in &hops[layer + 1][node] {
                        terms.clear();
                        terms.extend(adj.row(u).iter().filter(|&&(v, _)| mask[v]));
                        let out_row = &mut chunk[u * h..(u + 1) * h];
                        accumulate_row_sum(out_row, z_block, &terms, h);
                        for (o, &gv) in out_row.iter_mut().zip(gate.row(u)) {
                            *o *= gv;
                        }
                    }
                };
                if fan_out {
                    propagated
                        .as_mut_slice()
                        .par_chunks_mut(n * h)
                        .enumerate()
                        .for_each(sparse_stage);
                } else {
                    for pair in propagated.as_mut_slice().chunks_mut(n * h).enumerate() {
                        sparse_stage(pair);
                    }
                }
            }
            std::mem::swap(&mut t, &mut propagated);
        }
        for b in 0..batch {
            let u = seed_node(b);
            for &v in &hops[k][u] {
                i1[(v, u)] += t.row_l1(b * n + v);
            }
        }
        first_seed += batch;
    }
    normalize_rows(i1)
}

/// The original seed-at-a-time realized Jacobian, kept as the reference
/// implementation the batched [`realized`] is differentially tested and
/// benchmarked against. Its dense products are pinned to the retained
/// [`Matrix::matmul_reference`] kernel so this function keeps measuring the
/// seed implementation as it was, regardless of how `Matrix::matmul`
/// evolves.
#[allow(clippy::needless_range_loop)] // layer index parallels gates/pre/weights
pub fn realized_reference(model: &GcnModel, g: &Graph) -> Matrix {
    let n = g.num_nodes();
    let d = model.config().input_dim;
    let trace = model.forward(g);
    let adj = &*trace.adj;
    let k = model.config().layers;

    // ReLU gate masks per layer.
    let gates: Vec<Matrix> =
        trace.pre.iter().map(|z| z.map(|x| if x > 0.0 { 1.0 } else { 0.0 })).collect();

    let mut i1 = Matrix::zeros(n, n); // i1[(v, u)] = ‖∂X_v^k/∂X_u^0‖₁
                                      // forward-mode: seed ∂X/∂X_u[d] = e_u e_dᵀ and push through the layers.
    for u in 0..n {
        for dim in 0..d {
            let mut t = Matrix::zeros(n, d);
            t[(u, dim)] = 1.0;
            for layer in 0..k {
                let propagated = adj.matmul(&t);
                let z = propagated.matmul_reference(model.conv_weight(layer));
                t = z.hadamard(&gates[layer]);
            }
            for v in 0..n {
                i1[(v, u)] += t.row_l1(v);
            }
        }
    }
    normalize_rows(i1)
}

fn monte_carlo(g: &Graph, k: usize, walks: u32, rng: &mut impl Rng) -> Matrix {
    let n = g.num_nodes();
    // One independently seeded stream per source node, derived serially from
    // the caller's RNG: source nodes then fan out across rayon workers
    // without contending for (or reordering draws from) a shared generator,
    // and the result is identical for any thread count.
    let streams: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let walk_rows = |(v, stream): (usize, u64)| {
        let mut rng = SmallRng::seed_from_u64(stream);
        let mut row = vec![0.0f32; n];
        // Walk on the self-looped, symmetrized graph (the GCN's
        // receptive field).
        for _ in 0..walks.max(1) {
            let mut cur = v;
            for _ in 0..k {
                // neighbors + self loop, uniform choice
                // (degree-proportional approximation of Ã's support).
                let out = g.neighbors(cur);
                let inn = if g.is_directed() { g.in_neighbors(cur) } else { &[] };
                let deg = out.len() + inn.len();
                let pick = rng.gen_range(0..=deg);
                cur = if pick == deg {
                    cur // self loop
                } else if pick < out.len() {
                    out[pick].0
                } else {
                    inn[pick - out.len()].0
                };
            }
            row[cur] += 1.0;
        }
        row
    };
    // ~ one RNG draw + one neighbor index per walk step, per source node
    let rows: Vec<Vec<f32>> = if rayon::should_fan_out(n * walks.max(1) as usize * k * 8) {
        streams.into_par_iter().enumerate().map(walk_rows).collect()
    } else {
        streams.into_iter().enumerate().map(walk_rows).collect()
    };
    let mut counts = Matrix::zeros(n, n);
    for (v, row) in rows.iter().enumerate() {
        counts.set_row(v, row);
    }
    normalize_rows(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvex_gnn::GcnConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path(n: usize, d: usize) -> Graph {
        let mut b = Graph::builder(false);
        for i in 0..n {
            let mut f = vec![0.0; d];
            f[i % d] = 1.0;
            b.add_node(0, &f);
        }
        for i in 1..n {
            b.add_edge(i - 1, i, 0);
        }
        b.build()
    }

    fn model(layers: usize, d: usize) -> GcnModel {
        let cfg = GcnConfig { input_dim: d, hidden: 6, layers, num_classes: 2 };
        GcnModel::new(cfg, &mut ChaCha8Rng::seed_from_u64(5))
    }

    #[test]
    fn expected_rows_are_stochastic() {
        let g = path(6, 2);
        let m = model(3, 2);
        let inf =
            influence_matrix(&m, &g, InfluenceMode::Expected, &mut ChaCha8Rng::seed_from_u64(0));
        for v in 0..6 {
            let s: f32 = inf.row(v).iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "row {v} sums to {s}");
            assert!(inf.row(v).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn expected_influence_decays_with_distance() {
        let g = path(7, 2);
        let m = model(2, 2);
        let inf =
            influence_matrix(&m, &g, InfluenceMode::Expected, &mut ChaCha8Rng::seed_from_u64(0));
        // node 0's influence on node 3 (distance 3 > k=2) must be zero,
        // on node 1 positive and larger than on node 2.
        assert_eq!(inf[(3, 0)], 0.0);
        assert!(inf[(1, 0)] > inf[(2, 0)]);
        assert!(inf[(2, 0)] > 0.0);
    }

    #[test]
    fn realized_agrees_with_expected_support() {
        // realized Jacobian must vanish outside the k-hop neighborhood too
        let g = path(7, 2);
        let m = model(2, 2);
        let inf =
            influence_matrix(&m, &g, InfluenceMode::Realized, &mut ChaCha8Rng::seed_from_u64(0));
        assert_eq!(inf[(4, 0)], 0.0);
        for v in 0..7 {
            let s: f32 = inf.row(v).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
    }

    /// The batched propagation must reproduce the seed-at-a-time reference
    /// on shapes that exercise partial batches and uneven dims.
    #[test]
    fn batched_realized_matches_reference() {
        for &(n, d, layers) in &[(1, 1, 1), (5, 3, 2), (9, 2, 3)] {
            let g = path(n, d);
            let m = model(layers, d);
            let batched = realized(&m, &g);
            let per_seed = realized_reference(&m, &g);
            assert_eq!(batched.shape(), per_seed.shape());
            for (x, y) in batched.as_slice().iter().zip(per_seed.as_slice()) {
                assert!(
                    (x - y).abs() < 1e-5,
                    "batched Jacobian diverged at n={n} d={d} k={layers}: {x} vs {y}"
                );
            }
        }
    }

    /// The realized Jacobian must match central finite differences of the
    /// actual network output w.r.t. an input feature entry (up to the L1
    /// aggregation): spot-check one (v, u) pair's sensitivity ordering.
    #[test]
    fn realized_matches_finite_difference() {
        let g = path(4, 2);
        let m = model(2, 2);
        // analytic: unnormalized L1 via realized(); recompute here directly
        let inf = realized(&m, &g);
        // finite difference of sum|X_v^k| wrt X_u feature 0:
        let eps = 1e-2_f32;
        let u = 0usize;
        let v = 1usize;
        let adj = gvex_gnn::propagation::NormAdj::new(&g);
        let perturb = |delta: f32| {
            let mut x = g.features().clone();
            x[(u, 0)] += delta;
            let t = m.forward_from_features(x, adj.clone());
            t.embeddings().row(v).to_vec()
        };
        let plus = perturb(eps);
        let minus = perturb(-eps);
        let fd: f32 = plus.iter().zip(&minus).map(|(p, q)| ((p - q) / (2.0 * eps)).abs()).sum();
        // realized() normalizes rows, so compare *signs of presence* only:
        assert_eq!(fd > 1e-4, inf[(v, u)] > 1e-6, "fd {fd} vs inf {}", inf[(v, u)]);
    }

    #[test]
    fn monte_carlo_rows_stochastic_and_local() {
        let g = path(8, 2);
        let m = model(2, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let inf = influence_matrix(&m, &g, InfluenceMode::MonteCarlo { walks: 200 }, &mut rng);
        for v in 0..8 {
            let s: f32 = inf.row(v).iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
        }
        // walks of length 2 cannot reach distance 3+
        assert_eq!(inf[(0, 5)], 0.0);
    }

    #[test]
    fn isolated_node_self_influence() {
        let mut b = Graph::builder(false);
        b.add_node(0, &[1.0]);
        b.add_node(0, &[1.0]);
        let g = b.build();
        let m = model(2, 1);
        let inf =
            influence_matrix(&m, &g, InfluenceMode::Expected, &mut ChaCha8Rng::seed_from_u64(0));
        assert!((inf[(0, 0)] - 1.0).abs() < 1e-6);
        assert_eq!(inf[(0, 1)], 0.0);
    }
}
