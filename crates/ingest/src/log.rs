//! The append-only mutation log: the `ΔG` stream of the paper's dynamic
//! setting (§5), durable and replayable.
//!
//! One mutation per line, JSON-encoded ([`Mutation`] is the wire form —
//! a flat struct with every field `#[serde(default)]`, the same
//! forward/backward tolerance the serve protocol uses). [`Mutation::parse`]
//! validates a wire record into the typed [`Op`] the engine applies;
//! malformed records are typed [`LogError`]s, never panics, so a daemon
//! fed a bad log line keeps serving.

use gvex_graph::Graph;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One mutation in wire form. Unknown ops and missing fields surface as
/// [`LogError`] at [`Mutation::parse`] time; extra fields are ignored and
/// absent ones default, so old logs replay against newer binaries.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Mutation {
    /// Operation name: `add_graph`, `remove_graph`, `add_edge`,
    /// `remove_edge`, `add_node`, or `remove_node`.
    pub op: String,
    /// Target graph index (all ops except `add_graph`).
    #[serde(default)]
    pub graph: Option<u64>,
    /// Ground-truth class for `add_graph`.
    #[serde(default)]
    pub truth: Option<u64>,
    /// The new graph for `add_graph`.
    #[serde(default)]
    pub payload: Option<Graph>,
    /// First endpoint (`add_edge`/`remove_edge`) or the node id
    /// (`remove_node`).
    #[serde(default)]
    pub u: Option<u64>,
    /// Second endpoint (`add_edge`/`remove_edge`).
    #[serde(default)]
    pub v: Option<u64>,
    /// Edge type for `add_edge` and for the attachment edges of
    /// `add_node` (defaults to type 0).
    #[serde(default)]
    pub etype: Option<u64>,
    /// Node type for `add_node` (defaults to type 0).
    #[serde(default)]
    pub ntype: Option<u64>,
    /// Feature vector of the new node for `add_node`.
    #[serde(default)]
    pub features: Vec<f32>,
    /// Existing nodes the new node attaches to for `add_node`.
    #[serde(default)]
    pub attach: Vec<u64>,
}

/// A validated mutation, ready for [`crate::engine::IngestEngine::apply`].
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Append a new graph with its ground-truth class.
    AddGraph {
        /// The graph to append.
        graph: Graph,
        /// Its ground-truth class label.
        truth: usize,
    },
    /// Remove the graph at `index`; later graphs shift down by one.
    RemoveGraph {
        /// Database index of the doomed graph.
        index: usize,
    },
    /// Insert one edge into an existing graph.
    AddEdge {
        /// Database index of the edited graph.
        graph: usize,
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
        /// Edge type id.
        etype: u32,
    },
    /// Delete one edge from an existing graph.
    RemoveEdge {
        /// Database index of the edited graph.
        graph: usize,
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Append one node to an existing graph, attached to `attach`.
    AddNode {
        /// Database index of the edited graph.
        graph: usize,
        /// Node type of the newcomer.
        ntype: u32,
        /// Its feature vector.
        features: Vec<f32>,
        /// Existing node ids the newcomer links to.
        attach: Vec<usize>,
        /// Edge type of those attachment edges.
        etype: u32,
    },
    /// Delete one node (and its incident edges); later node ids in that
    /// graph shift down by one.
    RemoveNode {
        /// Database index of the edited graph.
        graph: usize,
        /// Node id of the doomed node.
        node: usize,
    },
}

/// Why a log record could not be read or validated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogError {
    /// Filesystem failure, stringified.
    Io(String),
    /// A line failed to decode as a [`Mutation`].
    Parse {
        /// 1-based line number in the log file.
        line: usize,
        /// Decoder message.
        msg: String,
    },
    /// The `op` field names no known operation.
    UnknownOp(String),
    /// A field required by this `op` was absent.
    MissingField {
        /// The operation being validated.
        op: &'static str,
        /// The absent field.
        field: &'static str,
    },
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "mutation log io error: {e}"),
            LogError::Parse { line, msg } => write!(f, "mutation log line {line}: {msg}"),
            LogError::UnknownOp(op) => write!(f, "unknown mutation op '{op}'"),
            LogError::MissingField { op, field } => {
                write!(f, "mutation '{op}' is missing required field '{field}'")
            }
        }
    }
}

impl std::error::Error for LogError {}

fn need(op: &'static str, field: &'static str, v: Option<u64>) -> Result<usize, LogError> {
    v.map(|x| x as usize).ok_or(LogError::MissingField { op, field })
}

impl Mutation {
    /// Validates the wire record into a typed [`Op`].
    pub fn parse(&self) -> Result<Op, LogError> {
        match self.op.as_str() {
            "add_graph" => Ok(Op::AddGraph {
                graph: self
                    .payload
                    .clone()
                    .ok_or(LogError::MissingField { op: "add_graph", field: "payload" })?,
                truth: need("add_graph", "truth", self.truth)?,
            }),
            "remove_graph" => {
                Ok(Op::RemoveGraph { index: need("remove_graph", "graph", self.graph)? })
            }
            "add_edge" => Ok(Op::AddEdge {
                graph: need("add_edge", "graph", self.graph)?,
                u: need("add_edge", "u", self.u)?,
                v: need("add_edge", "v", self.v)?,
                etype: self.etype.unwrap_or(0) as u32,
            }),
            "remove_edge" => Ok(Op::RemoveEdge {
                graph: need("remove_edge", "graph", self.graph)?,
                u: need("remove_edge", "u", self.u)?,
                v: need("remove_edge", "v", self.v)?,
            }),
            "add_node" => Ok(Op::AddNode {
                graph: need("add_node", "graph", self.graph)?,
                ntype: self.ntype.unwrap_or(0) as u32,
                features: self.features.clone(),
                attach: self.attach.iter().map(|&a| a as usize).collect(),
                etype: self.etype.unwrap_or(0) as u32,
            }),
            "remove_node" => Ok(Op::RemoveNode {
                graph: need("remove_node", "graph", self.graph)?,
                node: need("remove_node", "u", self.u)?,
            }),
            other => Err(LogError::UnknownOp(other.to_string())),
        }
    }
}

impl Op {
    /// The wire form of this op — `parse` of the result round-trips.
    pub fn to_wire(&self) -> Mutation {
        match self {
            Op::AddGraph { graph, truth } => Mutation {
                op: "add_graph".into(),
                payload: Some(graph.clone()),
                truth: Some(*truth as u64),
                ..Mutation::default()
            },
            Op::RemoveGraph { index } => Mutation {
                op: "remove_graph".into(),
                graph: Some(*index as u64),
                ..Mutation::default()
            },
            Op::AddEdge { graph, u, v, etype } => Mutation {
                op: "add_edge".into(),
                graph: Some(*graph as u64),
                u: Some(*u as u64),
                v: Some(*v as u64),
                etype: Some(u64::from(*etype)),
                ..Mutation::default()
            },
            Op::RemoveEdge { graph, u, v } => Mutation {
                op: "remove_edge".into(),
                graph: Some(*graph as u64),
                u: Some(*u as u64),
                v: Some(*v as u64),
                ..Mutation::default()
            },
            Op::AddNode { graph, ntype, features, attach, etype } => Mutation {
                op: "add_node".into(),
                graph: Some(*graph as u64),
                ntype: Some(u64::from(*ntype)),
                features: features.clone(),
                attach: attach.iter().map(|&a| a as u64).collect(),
                etype: Some(u64::from(*etype)),
                ..Mutation::default()
            },
            Op::RemoveNode { graph, node } => Mutation {
                op: "remove_node".into(),
                graph: Some(*graph as u64),
                u: Some(*node as u64),
                ..Mutation::default()
            },
        }
    }
}

/// Serializes mutations as JSON Lines (one record per line, trailing
/// newline) — the append-friendly on-disk format.
pub fn to_jsonl(muts: &[Mutation]) -> String {
    let mut out = String::new();
    for m in muts {
        out.push_str(&serde_json::to_string(m).expect("mutations always serialize"));
        out.push('\n');
    }
    out
}

/// Writes a mutation log to `path` (overwriting).
pub fn write_log(path: &Path, muts: &[Mutation]) -> Result<(), LogError> {
    std::fs::write(path, to_jsonl(muts)).map_err(|e| LogError::Io(e.to_string()))
}

/// Reads a JSON Lines mutation log; blank lines are skipped, a malformed
/// line is a typed error naming its line number.
pub fn read_log(path: &Path) -> Result<Vec<Mutation>, LogError> {
    let text = std::fs::read_to_string(path).map_err(|e| LogError::Io(e.to_string()))?;
    parse_jsonl(&text)
}

/// Parses JSON Lines text into mutations (the in-memory half of
/// [`read_log`], shared by the serve `mutate` handler).
pub fn parse_jsonl(text: &str) -> Result<Vec<Mutation>, LogError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let m: Mutation = serde_json::from_str(line)
            .map_err(|e| LogError::Parse { line: i + 1, msg: format!("{e:?}") })?;
        out.push(m);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Graph {
        let mut b = Graph::builder(false);
        b.add_node(0, &[1.0, 2.0]);
        b.add_node(1, &[3.0, 4.0]);
        b.add_edge(0, 1, 0);
        b.build()
    }

    #[test]
    fn ops_round_trip_through_wire_and_jsonl() {
        let ops = [
            Op::AddGraph { graph: tiny(), truth: 1 },
            Op::RemoveGraph { index: 3 },
            Op::AddEdge { graph: 0, u: 1, v: 2, etype: 1 },
            Op::RemoveEdge { graph: 2, u: 0, v: 1 },
            Op::AddNode { graph: 1, ntype: 2, features: vec![0.5], attach: vec![0, 3], etype: 1 },
            Op::RemoveNode { graph: 1, node: 4 },
        ];
        let wire: Vec<Mutation> = ops.iter().map(Op::to_wire).collect();
        let text = to_jsonl(&wire);
        assert_eq!(text.lines().count(), ops.len());
        let back = parse_jsonl(&text).expect("log parses");
        for (op, m) in ops.iter().zip(&back) {
            assert_eq!(&m.parse().expect("wire validates"), op);
        }
    }

    #[test]
    fn unknown_op_and_missing_fields_are_typed() {
        let m = Mutation { op: "explode".into(), ..Mutation::default() };
        assert_eq!(m.parse(), Err(LogError::UnknownOp("explode".into())));
        let m =
            Mutation { op: "add_edge".into(), graph: Some(0), u: Some(1), ..Default::default() };
        assert_eq!(m.parse(), Err(LogError::MissingField { op: "add_edge", field: "v" }));
        let m = Mutation { op: "add_graph".into(), truth: Some(0), ..Default::default() };
        assert_eq!(m.parse(), Err(LogError::MissingField { op: "add_graph", field: "payload" }));
    }

    #[test]
    fn blank_lines_skipped_and_bad_lines_located() {
        let good = serde_json::to_string(&Op::RemoveGraph { index: 1 }.to_wire()).unwrap();
        let text = format!("{good}\n\n{good}\n");
        assert_eq!(parse_jsonl(&text).unwrap().len(), 2);
        let bad = format!("{good}\nnot json\n");
        match parse_jsonl(&bad) {
            Err(LogError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn defaults_tolerate_extra_and_absent_fields() {
        let m: Mutation =
            serde_json::from_str("{\"op\":\"add_edge\",\"graph\":1,\"u\":0,\"v\":2,\"future\":9}")
                .expect("extra fields ignored");
        assert_eq!(m.parse(), Ok(Op::AddEdge { graph: 1, u: 0, v: 2, etype: 0 }));
    }
}
