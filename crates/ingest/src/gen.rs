//! Synthesizing mutation streams (`gvex ingest gen`): deterministic,
//! seeded workloads that are valid by construction.
//!
//! The generator replays its own output against a scratch copy of the
//! database using the very same graph-edit helpers the engine uses, so
//! every emitted op names live indices — a generated log always replays
//! cleanly in sequence.

use crate::engine::{with_edge_added, with_edge_removed, with_node_added, with_node_removed};
use crate::log::{Mutation, Op};
use gvex_graph::{Graph, GraphDatabase};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Workload shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenProfile {
    /// Single-graph edits only (edge flips, node adds) — the localized
    /// workload the ≥10× incrementality gate measures.
    Localized,
    /// Localized edits plus graph arrivals/departures and node removals.
    Churn,
}

impl GenProfile {
    /// Parses a CLI profile name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "localized" => Some(GenProfile::Localized),
            "churn" => Some(GenProfile::Churn),
            _ => None,
        }
    }
}

/// Scratch state mirroring what sequential application will produce.
struct Scratch {
    graphs: Vec<Graph>,
    truths: Vec<usize>,
}

/// Generates `count` mutations valid against `db` when applied in order.
pub fn generate(db: &GraphDatabase, count: usize, seed: u64, profile: GenProfile) -> Vec<Mutation> {
    assert!(!db.is_empty(), "cannot generate mutations for an empty database");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut s = Scratch { graphs: db.graphs().to_vec(), truths: db.truth().to_vec() };
    let mut out = Vec::with_capacity(count);
    // each step tries rolls until one is applicable, so the stream always
    // reaches `count` (add_edge on a tiny db is always applicable in the
    // limit because add_node keeps creating room)
    while out.len() < count {
        let roll: f64 = rng.gen_range(0.0..1.0);
        let op = match profile {
            GenProfile::Localized => {
                if roll < 0.45 {
                    gen_add_edge(&s, &mut rng)
                } else if roll < 0.80 {
                    gen_remove_edge(&s, &mut rng)
                } else {
                    gen_add_node(&s, &mut rng)
                }
            }
            GenProfile::Churn => {
                if roll < 0.30 {
                    gen_add_edge(&s, &mut rng)
                } else if roll < 0.55 {
                    gen_remove_edge(&s, &mut rng)
                } else if roll < 0.70 {
                    gen_add_node(&s, &mut rng)
                } else if roll < 0.80 {
                    gen_remove_node(&s, &mut rng)
                } else if roll < 0.92 {
                    gen_add_graph(&s, &mut rng)
                } else {
                    gen_remove_graph(&s, &mut rng)
                }
            }
        };
        let Some(op) = op else { continue };
        apply_scratch(&mut s, &op);
        out.push(op.to_wire());
    }
    out
}

fn pick_graph(s: &Scratch, rng: &mut ChaCha8Rng) -> usize {
    rng.gen_range(0..s.graphs.len())
}

fn gen_add_edge(s: &Scratch, rng: &mut ChaCha8Rng) -> Option<Op> {
    let gi = pick_graph(s, rng);
    let g = &s.graphs[gi];
    let n = g.num_nodes();
    if n < 2 {
        return None;
    }
    for _ in 0..16 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            let etype = existing_etype(g, rng);
            return Some(Op::AddEdge { graph: gi, u, v, etype });
        }
    }
    None
}

fn gen_remove_edge(s: &Scratch, rng: &mut ChaCha8Rng) -> Option<Op> {
    let gi = pick_graph(s, rng);
    let g = &s.graphs[gi];
    // keep at least one edge so graphs never degrade to isolated points
    if g.num_edges() < 2 {
        return None;
    }
    let edges: Vec<(usize, usize)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    let &(u, v) = &edges[rng.gen_range(0..edges.len())];
    Some(Op::RemoveEdge { graph: gi, u, v })
}

fn gen_add_node(s: &Scratch, rng: &mut ChaCha8Rng) -> Option<Op> {
    let gi = pick_graph(s, rng);
    let g = &s.graphs[gi];
    let n = g.num_nodes();
    // clone an existing node's type/features so the newcomer is
    // in-distribution for the model
    let donor = rng.gen_range(0..n);
    let attach = vec![rng.gen_range(0..n)];
    Some(Op::AddNode {
        graph: gi,
        ntype: g.node_type(donor),
        features: g.features().row(donor).to_vec(),
        attach,
        etype: existing_etype(g, rng),
    })
}

fn gen_remove_node(s: &Scratch, rng: &mut ChaCha8Rng) -> Option<Op> {
    let gi = pick_graph(s, rng);
    let g = &s.graphs[gi];
    if g.num_nodes() < 4 {
        return None;
    }
    Some(Op::RemoveNode { graph: gi, node: rng.gen_range(0..g.num_nodes()) })
}

fn gen_add_graph(s: &Scratch, rng: &mut ChaCha8Rng) -> Option<Op> {
    // clone a random live graph, perturbed by one extra edge when it has
    // room — a plausible class member, not noise
    let gi = pick_graph(s, rng);
    let g = &s.graphs[gi];
    let n = g.num_nodes();
    let mut newcomer = g.clone();
    for _ in 0..8 {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            newcomer = with_edge_added(g, u, v, existing_etype(g, rng));
            break;
        }
    }
    Some(Op::AddGraph { graph: newcomer, truth: s.truths[gi] })
}

fn gen_remove_graph(s: &Scratch, rng: &mut ChaCha8Rng) -> Option<Op> {
    if s.graphs.len() <= 4 {
        return None;
    }
    Some(Op::RemoveGraph { index: pick_graph(s, rng) })
}

fn existing_etype(g: &Graph, rng: &mut ChaCha8Rng) -> u32 {
    let m = g.num_edges();
    if m == 0 {
        return 0;
    }
    let k = rng.gen_range(0..m);
    g.edges().nth(k).map_or(0, |(_, _, t)| t)
}

fn apply_scratch(s: &mut Scratch, op: &Op) {
    match op {
        Op::AddGraph { graph, truth } => {
            s.graphs.push(graph.clone());
            s.truths.push(*truth);
        }
        Op::RemoveGraph { index } => {
            s.graphs.remove(*index);
            s.truths.remove(*index);
        }
        Op::AddEdge { graph, u, v, etype } => {
            s.graphs[*graph] = with_edge_added(&s.graphs[*graph], *u, *v, *etype);
        }
        Op::RemoveEdge { graph, u, v } => {
            s.graphs[*graph] = with_edge_removed(&s.graphs[*graph], *u, *v);
        }
        Op::AddNode { graph, ntype, features, attach, etype } => {
            s.graphs[*graph] = with_node_added(&s.graphs[*graph], *ntype, features, attach, *etype);
        }
        Op::RemoveNode { graph, node } => {
            s.graphs[*graph] = with_node_removed(&s.graphs[*graph], *node);
        }
    }
}
