//! [`IngestEngine`]: a live database plus its explanation views, patched
//! in place by [`ViewMaintainer`] (IncPGen/IncPMatch) as mutations arrive.
//!
//! The engine owns one mutable copy of everything a `.gvex` store holds —
//! database, model, per-class views — and applies validated [`Op`]s at
//! high rate. Each mutation patches only the touched label's view
//! (subgraph re-explained, patterns extended/garbage-collected *only when
//! necessary*, per Example 2.1) instead of recomputing every view. Epochs
//! ([`IngestEngine::publish_epoch`]) batch mutations into a consistent
//! unit: the caller re-materializes serving state from
//! [`IngestEngine::views_set`] and invalidates the returned dirty classes,
//! which bounds staleness at one epoch interval.
//!
//! # Equivalence contract
//!
//! Under the default content-deterministic influence mode, the engine's
//! subgraph tier and explainability scores are **bitwise identical** to a
//! from-scratch [`rebuild_views`] over the mutated database; the pattern
//! tier is *a* valid cover (C3/PMatch holds for every subgraph) but may
//! name different representatives than scratch `Psum` — exactly the
//! paper's "it suffices to keep only P₁₁ or P₃₂" freedom.
//! [`check_equivalent`] pins all of this and is enforced by the proptest
//! differential suite and the `ingest` bench gate in ci.sh.

use crate::log::Op;
use gvex_core::{
    explain_database, pmatch, Configuration, ExplanationView, ExplanationViewSet, MaintainError,
    ViewMaintainer,
};
use gvex_gnn::GcnModel;
use gvex_graph::{Graph, GraphDatabase};
use gvex_store::{write_store, BuildInput, StoreError};
use std::collections::BTreeSet;
use std::path::Path;
use std::time::Instant;

/// Why a mutation could not be applied. The engine rejects the op and
/// stays consistent — a bad record in a replayed log never corrupts state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IngestError {
    /// Graph index past the end of the database.
    GraphOutOfRange {
        /// Requested index.
        index: usize,
        /// Current database size.
        len: usize,
    },
    /// Node id past the end of the target graph.
    NodeOutOfRange {
        /// Target graph.
        graph: usize,
        /// Requested node.
        node: usize,
        /// That graph's node count.
        len: usize,
    },
    /// `remove_edge` named an edge the graph does not have.
    EdgeAbsent {
        /// Target graph.
        graph: usize,
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// `add_edge` named an edge the graph already has.
    EdgeExists {
        /// Target graph.
        graph: usize,
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Self-loops are not representable.
    SelfLoop {
        /// Target graph.
        graph: usize,
        /// The offending node.
        node: usize,
    },
    /// `remove_node` would leave the graph empty.
    LastNode {
        /// Target graph.
        graph: usize,
    },
    /// `add_graph` carried an empty graph.
    EmptyGraph,
    /// `add_graph` truth label out of class range.
    TruthOutOfRange {
        /// The label.
        truth: usize,
        /// Number of classes.
        classes: usize,
    },
    /// `add_graph` payload features disagree with the database.
    FeatureDimMismatch {
        /// The database's feature dimensionality.
        expected: usize,
        /// The payload's.
        got: usize,
    },
    /// `add_graph` payload directedness disagrees with the database.
    DirectedMismatch,
    /// The view set handed to [`IngestEngine::new`] does not hold one
    /// view per class in label order.
    ViewsMismatch {
        /// Expected view count (= classes).
        expected: usize,
        /// What was provided.
        got: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::GraphOutOfRange { index, len } => {
                write!(f, "graph {index} out of range (database holds {len})")
            }
            IngestError::NodeOutOfRange { graph, node, len } => {
                write!(f, "node {node} out of range for graph {graph} ({len} nodes)")
            }
            IngestError::EdgeAbsent { graph, u, v } => {
                write!(f, "graph {graph} has no edge {u}-{v}")
            }
            IngestError::EdgeExists { graph, u, v } => {
                write!(f, "graph {graph} already has edge {u}-{v}")
            }
            IngestError::SelfLoop { graph, node } => {
                write!(f, "self-loop {node}-{node} rejected for graph {graph}")
            }
            IngestError::LastNode { graph } => {
                write!(f, "cannot remove the last node of graph {graph}")
            }
            IngestError::EmptyGraph => write!(f, "cannot ingest an empty graph"),
            IngestError::TruthOutOfRange { truth, classes } => {
                write!(f, "truth label {truth} out of range ({classes} classes)")
            }
            IngestError::FeatureDimMismatch { expected, got } => {
                write!(f, "feature dim {got} does not match database dim {expected}")
            }
            IngestError::DirectedMismatch => {
                write!(f, "payload directedness does not match the database")
            }
            IngestError::ViewsMismatch { expected, got } => {
                write!(
                    f,
                    "need one view per class in label order ({expected} classes, {got} views)"
                )
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Running totals the engine keeps (mirrored into `ingest.*` obs
/// counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Mutations successfully applied.
    pub mutations_applied: u64,
    /// Epochs published.
    pub epochs_published: u64,
    /// Incremental view patches (maintainer add/remove operations).
    pub views_patched: u64,
    /// Full per-label view recomputes (the non-incremental fallback the
    /// differential/bench reference arms exercise).
    pub views_recomputed: u64,
}

/// What one [`IngestEngine::publish_epoch`] covered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochSummary {
    /// The epoch number just published.
    pub epoch: u64,
    /// Mutations folded into this epoch.
    pub mutations: usize,
    /// Cache-key `class` values whose cached answers the publisher must
    /// invalidate: every dirtied class label, every mutated graph index
    /// (node-kind answers), and `u64::MAX` (whole-database answers).
    pub dirty_classes: Vec<u64>,
    /// Per-mutation staleness (apply → publish), milliseconds.
    pub staleness_ms: Vec<u64>,
}

/// A live database + views under incremental maintenance.
pub struct IngestEngine {
    dataset: String,
    seed: u64,
    db: GraphDatabase,
    model: GcnModel,
    cfg: Configuration,
    maintainer: ViewMaintainer,
    views: Vec<ExplanationView>,
    /// Classifier-assigned label per graph (routing table for patches).
    assigned: Vec<usize>,
    epoch: u64,
    dirty_classes: BTreeSet<usize>,
    dirty_graphs: BTreeSet<usize>,
    pending: Vec<Instant>,
    stats: IngestStats,
}

impl IngestEngine {
    /// Builds an engine over already-materialized parts. `views` must hold
    /// one view per class in label order (what [`rebuild_views`] and
    /// `gvex db build` produce); `epoch` seeds the epoch counter (a
    /// snapshot's `meta.epoch` when resuming, else 0).
    pub fn new(
        dataset: &str,
        seed: u64,
        db: GraphDatabase,
        model: GcnModel,
        cfg: Configuration,
        views: ExplanationViewSet,
        epoch: u64,
    ) -> Result<Self, IngestError> {
        let classes = db.num_classes();
        let labels_ok = views.views.len() == classes
            && views.views.iter().enumerate().all(|(l, v)| v.label == l);
        if !labels_ok {
            return Err(IngestError::ViewsMismatch { expected: classes, got: views.views.len() });
        }
        let maintainer = ViewMaintainer::new(cfg.clone());
        let assigned = db.graphs().iter().map(|g| maintainer.predict(&model, g)).collect();
        // counters registered up front so every replay reports both sides
        // of the patched-vs-recomputed split, even when one stays 0
        gvex_obs::counter!("ingest.views_patched", 0);
        gvex_obs::counter!("ingest.views_recomputed", 0);
        Ok(Self {
            dataset: dataset.to_string(),
            seed,
            db,
            model,
            cfg,
            maintainer,
            views: views.views,
            assigned,
            epoch,
            dirty_classes: BTreeSet::new(),
            dirty_graphs: BTreeSet::new(),
            pending: Vec::new(),
            stats: IngestStats::default(),
        })
    }

    /// The live database.
    pub fn db(&self) -> &GraphDatabase {
        &self.db
    }

    /// The (fixed) classifier.
    pub fn model(&self) -> &GcnModel {
        &self.model
    }

    /// The maintenance configuration.
    pub fn cfg(&self) -> &Configuration {
        &self.cfg
    }

    /// The classifier-assigned label of each live graph.
    pub fn assigned(&self) -> &[usize] {
        &self.assigned
    }

    /// Last published epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Mutations applied but not yet folded into a published epoch.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Running totals.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// The current views, cloned into the serializable set form (label
    /// order, the same shape [`rebuild_views`] returns).
    pub fn views_set(&self) -> ExplanationViewSet {
        ExplanationViewSet { views: self.views.clone() }
    }

    /// Applies one validated mutation, patching the affected view
    /// incrementally. On error the engine is unchanged.
    pub fn apply(&mut self, op: &Op) -> Result<(), IngestError> {
        gvex_obs::span!("ingest.apply");
        match op {
            Op::AddGraph { graph, truth } => self.add_graph(graph.clone(), *truth)?,
            Op::RemoveGraph { index } => self.remove_graph(*index)?,
            _ => {
                let (gi, edited) = self.edited_graph(op)?;
                self.replace_edited(gi, edited);
            }
        }
        self.stats.mutations_applied += 1;
        gvex_obs::counter!("ingest.mutations_applied");
        self.pending.push(Instant::now());
        Ok(())
    }

    /// Publishes the pending mutations as one epoch: bumps the epoch
    /// counter, records per-mutation staleness, and returns the dirty
    /// class set the caller must invalidate when swapping serving state.
    pub fn publish_epoch(&mut self) -> EpochSummary {
        gvex_obs::span!("ingest.publish");
        self.epoch += 1;
        let now = Instant::now();
        let staleness_ms: Vec<u64> = self
            .pending
            .drain(..)
            .map(|t| u64::try_from(now.duration_since(t).as_millis()).unwrap_or(u64::MAX))
            .collect();
        for &ms in &staleness_ms {
            gvex_obs::histogram!("ingest.staleness_ms", ms);
        }
        let mut dirty: Vec<u64> = self.dirty_classes.iter().map(|&c| c as u64).collect();
        dirty.extend(self.dirty_graphs.iter().map(|&g| g as u64));
        if !staleness_ms.is_empty() {
            dirty.push(u64::MAX);
        }
        dirty.sort_unstable();
        dirty.dedup();
        self.dirty_classes.clear();
        self.dirty_graphs.clear();
        self.stats.epochs_published += 1;
        gvex_obs::counter!("ingest.epochs_published");
        EpochSummary {
            epoch: self.epoch,
            mutations: staleness_ms.len(),
            dirty_classes: dirty,
            staleness_ms,
        }
    }

    /// Writes the engine's current content as a `.gvex` epoch snapshot —
    /// re-openable by `gvex serve --db` and `ServeState::open`, with
    /// `meta.epoch` recording the lifecycle position.
    pub fn snapshot(&self, path: &Path) -> Result<u64, StoreError> {
        gvex_obs::span!("ingest.snapshot");
        let views_json = self.views_set().to_json();
        let input = BuildInput {
            db: &self.db,
            model: &self.model,
            views_json: Some(&views_json),
            dataset: &self.dataset,
            seed: self.seed,
            mining: Some(self.cfg.mining),
            epoch: self.epoch,
        };
        write_store(path, &input)
    }

    /// From-scratch recompute of every view over the engine's current
    /// database — the reference arm of the differential and the bench.
    pub fn rebuilt(&mut self, threads: usize) -> ExplanationViewSet {
        self.stats.views_recomputed += self.db.num_classes() as u64;
        rebuild_views(&self.model, &self.db, &self.cfg, threads)
    }

    fn note_patch(&mut self) {
        self.stats.views_patched += 1;
        gvex_obs::counter!("ingest.views_patched");
    }

    /// Re-sorts a view's subgraphs into database order and recomputes the
    /// aggregate score as the in-order sum — the exact order
    /// `summarize` uses, which keeps incremental scores bitwise equal to
    /// recomputed ones.
    fn normalize(&mut self, label: usize) {
        let view = &mut self.views[label];
        view.subgraphs.sort_by_key(|s| s.graph_index);
        view.explainability = view.subgraphs.iter().map(|s| s.explainability).sum();
    }

    fn check_graph(&self, index: usize) -> Result<(), IngestError> {
        if index >= self.db.len() {
            return Err(IngestError::GraphOutOfRange { index, len: self.db.len() });
        }
        Ok(())
    }

    fn check_node(&self, graph: usize, node: usize) -> Result<(), IngestError> {
        let len = self.db.graph(graph).num_nodes();
        if node >= len {
            return Err(IngestError::NodeOutOfRange { graph, node, len });
        }
        Ok(())
    }

    fn add_graph(&mut self, g: Graph, truth: usize) -> Result<(), IngestError> {
        if g.num_nodes() == 0 {
            return Err(IngestError::EmptyGraph);
        }
        if truth >= self.db.num_classes() {
            return Err(IngestError::TruthOutOfRange { truth, classes: self.db.num_classes() });
        }
        if !self.db.is_empty() {
            if g.feature_dim() != self.db.feature_dim() {
                return Err(IngestError::FeatureDimMismatch {
                    expected: self.db.feature_dim(),
                    got: g.feature_dim(),
                });
            }
            if g.is_directed() != self.db.graph(0).is_directed() {
                return Err(IngestError::DirectedMismatch);
            }
        }
        let gi = self.db.push(g, truth);
        let predicted = self.maintainer.predict(&self.model, self.db.graph(gi));
        self.assigned.push(predicted);
        self.patch_in(predicted, gi);
        self.dirty_classes.insert(predicted);
        self.dirty_graphs.insert(gi);
        Ok(())
    }

    fn remove_graph(&mut self, index: usize) -> Result<(), IngestError> {
        self.check_graph(index)?;
        let label = self.assigned[index];
        match self.maintainer.remove_graph(&mut self.views[label], index) {
            Ok(()) => self.note_patch(),
            Err(MaintainError::GraphAbsent { .. }) => {} // graph had no explanation
            Err(e) => unreachable!("remove_graph only reports absence: {e}"),
        }
        self.db.remove_graph(index);
        self.assigned.remove(index);
        // later graphs shifted down by one; views track database indices
        for view in &mut self.views {
            for s in &mut view.subgraphs {
                if s.graph_index > index {
                    s.graph_index -= 1;
                }
            }
        }
        self.normalize(label);
        self.dirty_classes.insert(label);
        self.dirty_graphs.insert(index);
        Ok(())
    }

    /// Builds the post-edit graph for an edge/node op without touching
    /// engine state (validation happens here; mutation in
    /// [`Self::replace_edited`]).
    fn edited_graph(&self, op: &Op) -> Result<(usize, Graph), IngestError> {
        match *op {
            Op::AddEdge { graph, u, v, etype } => {
                self.check_graph(graph)?;
                self.check_node(graph, u)?;
                self.check_node(graph, v)?;
                if u == v {
                    return Err(IngestError::SelfLoop { graph, node: u });
                }
                let g = self.db.graph(graph);
                if g.has_edge(u, v) {
                    return Err(IngestError::EdgeExists { graph, u, v });
                }
                Ok((graph, with_edge_added(g, u, v, etype)))
            }
            Op::RemoveEdge { graph, u, v } => {
                self.check_graph(graph)?;
                self.check_node(graph, u)?;
                self.check_node(graph, v)?;
                let g = self.db.graph(graph);
                if !g.has_edge(u, v) {
                    return Err(IngestError::EdgeAbsent { graph, u, v });
                }
                Ok((graph, with_edge_removed(g, u, v)))
            }
            Op::AddNode { graph, ntype, ref features, ref attach, etype } => {
                self.check_graph(graph)?;
                for &a in attach {
                    self.check_node(graph, a)?;
                }
                let g = self.db.graph(graph);
                if g.feature_dim() != features.len() {
                    return Err(IngestError::FeatureDimMismatch {
                        expected: g.feature_dim(),
                        got: features.len(),
                    });
                }
                Ok((graph, with_node_added(g, ntype, features, attach, etype)))
            }
            Op::RemoveNode { graph, node } => {
                self.check_graph(graph)?;
                self.check_node(graph, node)?;
                let g = self.db.graph(graph);
                if g.num_nodes() == 1 {
                    return Err(IngestError::LastNode { graph });
                }
                Ok((graph, with_node_removed(g, node)))
            }
            Op::AddGraph { .. } | Op::RemoveGraph { .. } => {
                unreachable!("graph-level ops handled by apply")
            }
        }
    }

    /// Swaps in an edited graph and re-routes its explanation: drop the
    /// old subgraph from the old label's view, re-explain under the (new)
    /// predicted label. The edit is localized — no other graph's
    /// explanation is touched.
    fn replace_edited(&mut self, gi: usize, edited: Graph) {
        let old_label = self.assigned[gi];
        match self.maintainer.remove_graph(&mut self.views[old_label], gi) {
            Ok(()) => self.note_patch(),
            Err(MaintainError::GraphAbsent { .. }) => {}
            Err(e) => unreachable!("remove_graph only reports absence: {e}"),
        }
        self.db.replace_graph(gi, edited);
        let new_label = self.maintainer.predict(&self.model, self.db.graph(gi));
        self.assigned[gi] = new_label;
        self.patch_in(new_label, gi);
        self.normalize(old_label);
        self.dirty_classes.insert(old_label);
        self.dirty_classes.insert(new_label);
        self.dirty_graphs.insert(gi);
    }

    /// Explains `db.graph(gi)` into the view for its predicted `label`.
    fn patch_in(&mut self, label: usize, gi: usize) {
        match self.maintainer.add_graph(&self.model, &mut self.views[label], self.db.graph(gi), gi)
        {
            Ok(_) => self.note_patch(),
            // Algorithm 1's `return ∅`: a recompute would omit it too.
            Err(MaintainError::NotExplainable { .. }) => {}
            Err(e) => unreachable!("graph routed to its predicted label: {e}"),
        }
        self.normalize(label);
    }
}

/// From-scratch view generation over `db` — the reference the incremental
/// engine is differentially pinned against, and the slow arm of the
/// `ingest` bench.
pub fn rebuild_views(
    model: &GcnModel,
    db: &GraphDatabase,
    cfg: &Configuration,
    threads: usize,
) -> ExplanationViewSet {
    gvex_obs::counter!("ingest.views_recomputed", db.num_classes() as u64);
    let labels: Vec<usize> = (0..db.num_classes()).collect();
    explain_database(model, db, &labels, cfg, threads)
}

/// Outcome of [`check_equivalent`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Equivalence {
    /// All checks passed.
    pub ok: bool,
    /// First failing check, for diagnostics ("" when ok).
    pub detail: String,
}

/// Pins the incremental-vs-recompute equivalence contract:
///
/// 1. same labels, same subgraph counts,
/// 2. subgraph tiers byte-identical (serialized in database order),
/// 3. per-view explainability scores bitwise equal,
/// 4. C3 holds crosswise: `inc`'s patterns cover every subgraph of
///    `full` (the pattern tiers may differ as covers, never in validity).
pub fn check_equivalent(
    inc: &ExplanationViewSet,
    full: &ExplanationViewSet,
    cfg: &Configuration,
) -> Equivalence {
    let fail = |detail: String| Equivalence { ok: false, detail };
    if inc.views.len() != full.views.len() {
        return fail(format!("view count {} vs {}", inc.views.len(), full.views.len()));
    }
    for (vi, vf) in inc.views.iter().zip(&full.views) {
        let l = vf.label;
        if vi.label != l {
            return fail(format!("label order {} vs {l}", vi.label));
        }
        if vi.subgraphs.len() != vf.subgraphs.len() {
            return fail(format!(
                "label {l}: {} subgraphs incremental vs {} recomputed",
                vi.subgraphs.len(),
                vf.subgraphs.len()
            ));
        }
        let si = serde_json::to_string(&vi.subgraphs).expect("subgraphs serialize");
        let sf = serde_json::to_string(&vf.subgraphs).expect("subgraphs serialize");
        if si != sf {
            return fail(format!("label {l}: subgraph tier differs"));
        }
        if vi.explainability.to_bits() != vf.explainability.to_bits() {
            return fail(format!(
                "label {l}: explainability {} vs {}",
                vi.explainability, vf.explainability
            ));
        }
        for s in &vf.subgraphs {
            if !pmatch(&vi.patterns, &s.subgraph, cfg) {
                return fail(format!(
                    "label {l}: incremental patterns fail to cover graph {}",
                    s.graph_index
                ));
            }
        }
    }
    Equivalence { ok: true, detail: String::new() }
}

fn copy_nodes(g: &Graph, skip: Option<usize>) -> (gvex_graph::GraphBuilder, Vec<usize>) {
    let mut b = Graph::builder(g.is_directed());
    let mut remap = vec![usize::MAX; g.num_nodes()];
    for (v, slot) in remap.iter_mut().enumerate() {
        if Some(v) == skip {
            continue;
        }
        *slot = b.add_node(g.node_type(v), g.features().row(v));
    }
    (b, remap)
}

/// `g` plus edge `u-v` of type `t`.
pub fn with_edge_added(g: &Graph, u: usize, v: usize, t: u32) -> Graph {
    let (mut b, _) = copy_nodes(g, None);
    for (a, c, et) in g.edges() {
        b.add_edge(a, c, et);
    }
    b.add_edge(u, v, t);
    b.build()
}

/// `g` without edge `u-v` (either endpoint order for undirected graphs).
pub fn with_edge_removed(g: &Graph, u: usize, v: usize) -> Graph {
    let (mut b, _) = copy_nodes(g, None);
    for (a, c, et) in g.edges() {
        let doomed = (a == u && c == v) || (!g.is_directed() && a == v && c == u);
        if !doomed {
            b.add_edge(a, c, et);
        }
    }
    b.build()
}

/// `g` plus one node of type `ntype` with `features`, attached to each
/// node of `attach` by an edge of type `etype`.
pub fn with_node_added(
    g: &Graph,
    ntype: u32,
    features: &[f32],
    attach: &[usize],
    etype: u32,
) -> Graph {
    let (mut b, _) = copy_nodes(g, None);
    for (a, c, et) in g.edges() {
        b.add_edge(a, c, et);
    }
    let newbie = b.add_node(ntype, features);
    for &a in attach {
        b.add_edge(a, newbie, etype);
    }
    b.build()
}

/// `g` without node `node` and its incident edges; later node ids shift
/// down by one.
pub fn with_node_removed(g: &Graph, node: usize) -> Graph {
    let (mut b, remap) = copy_nodes(g, Some(node));
    for (a, c, et) in g.edges() {
        if a != node && c != node {
            b.add_edge(remap[a], remap[c], et);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvex_gnn::{trainer, GcnConfig};

    fn motif_graph(chain: usize) -> Graph {
        let mut b = Graph::builder(false);
        for _ in 0..chain {
            b.add_node(0, &[1.0, 0.0, 0.0]);
        }
        let m1 = b.add_node(1, &[0.0, 1.0, 0.0]);
        let m2 = b.add_node(2, &[0.0, 0.0, 1.0]);
        for v in 1..chain {
            b.add_edge(v - 1, v, 0);
        }
        b.add_edge(chain - 1, m1, 0);
        b.add_edge(m1, m2, 0);
        b.build()
    }

    fn plain_graph(chain: usize) -> Graph {
        let mut b = Graph::builder(false);
        for _ in 0..chain {
            b.add_node(0, &[1.0, 0.0, 0.0]);
        }
        for v in 1..chain {
            b.add_edge(v - 1, v, 0);
        }
        b.build()
    }

    fn setup() -> (GraphDatabase, GcnModel, Configuration) {
        let mut db = GraphDatabase::new(vec!["plain".into(), "motif".into()]);
        for i in 0..6 {
            db.push(plain_graph(5 + i % 2), 0);
            db.push(motif_graph(4 + i % 2), 1);
        }
        let split = trainer::Split {
            train: (0..db.len()).collect(),
            val: (0..db.len()).collect(),
            test: vec![],
        };
        let gcfg = GcnConfig { input_dim: 3, hidden: 8, layers: 2, num_classes: 2 };
        let opts = trainer::TrainOptions {
            epochs: 80,
            lr: 0.01,
            seed: 1,
            patience: 0,
            ..Default::default()
        };
        let (model, _) = trainer::train(&db, gcfg, &split, opts);
        (db, model, Configuration::uniform(0.05, 0.3, 0.5, 0, 4))
    }

    fn engine() -> (IngestEngine, Configuration) {
        let (db, model, cfg) = setup();
        let views = rebuild_views(&model, &db, &cfg, 1);
        let eng = IngestEngine::new("TEST", 7, db, model, cfg.clone(), views, 0).unwrap();
        (eng, cfg)
    }

    #[test]
    fn localized_edits_match_full_recompute() {
        let (mut eng, cfg) = engine();
        let ops = [
            Op::AddEdge { graph: 1, u: 0, v: 2, etype: 0 },
            Op::AddNode {
                graph: 3,
                ntype: 0,
                features: vec![1.0, 0.0, 0.0],
                attach: vec![1],
                etype: 0,
            },
            Op::RemoveEdge { graph: 1, u: 0, v: 2 },
        ];
        for op in &ops {
            eng.apply(op).expect("op applies");
        }
        let full = eng.rebuilt(1);
        let eq = check_equivalent(&eng.views_set(), &full, &cfg);
        assert!(eq.ok, "incremental != recompute: {}", eq.detail);
        assert_eq!(eng.stats().mutations_applied, 3);
        assert!(eng.stats().views_patched > 0);
    }

    #[test]
    fn graph_churn_matches_full_recompute() {
        let (mut eng, cfg) = engine();
        let newcomer = motif_graph(5);
        eng.apply(&Op::AddGraph { graph: newcomer, truth: 1 }).expect("add applies");
        assert_eq!(eng.db().len(), 13);
        eng.apply(&Op::RemoveGraph { index: 2 }).expect("remove applies");
        assert_eq!(eng.db().len(), 12);
        // indices in every view now reference the shifted database
        for view in &eng.views_set().views {
            for s in &view.subgraphs {
                assert!(s.graph_index < 12);
            }
        }
        let full = eng.rebuilt(1);
        let eq = check_equivalent(&eng.views_set(), &full, &cfg);
        assert!(eq.ok, "churn incremental != recompute: {}", eq.detail);
    }

    #[test]
    fn invalid_ops_are_typed_and_leave_state_alone() {
        let (mut eng, _) = engine();
        let before = eng.views_set().to_json();
        assert_eq!(
            eng.apply(&Op::RemoveGraph { index: 99 }),
            Err(IngestError::GraphOutOfRange { index: 99, len: 12 })
        );
        assert_eq!(
            eng.apply(&Op::AddEdge { graph: 0, u: 0, v: 1, etype: 0 }),
            Err(IngestError::EdgeExists { graph: 0, u: 0, v: 1 })
        );
        assert_eq!(
            eng.apply(&Op::AddEdge { graph: 0, u: 1, v: 1, etype: 0 }),
            Err(IngestError::SelfLoop { graph: 0, node: 1 })
        );
        assert_eq!(
            eng.apply(&Op::RemoveEdge { graph: 0, u: 0, v: 3 }),
            Err(IngestError::EdgeAbsent { graph: 0, u: 0, v: 3 })
        );
        assert_eq!(
            eng.apply(&Op::AddGraph { graph: plain_graph(2), truth: 9 }),
            Err(IngestError::TruthOutOfRange { truth: 9, classes: 2 })
        );
        assert_eq!(eng.stats().mutations_applied, 0);
        assert_eq!(eng.views_set().to_json(), before, "state mutated by a rejected op");
    }

    #[test]
    fn epochs_batch_mutations_and_report_dirty_classes() {
        let (mut eng, _) = engine();
        assert_eq!(eng.epoch(), 0);
        eng.apply(&Op::AddEdge { graph: 1, u: 0, v: 2, etype: 0 }).unwrap();
        eng.apply(&Op::AddEdge { graph: 0, u: 0, v: 2, etype: 0 }).unwrap();
        assert_eq!(eng.pending(), 2);
        let summary = eng.publish_epoch();
        assert_eq!(summary.epoch, 1);
        assert_eq!(summary.mutations, 2);
        assert_eq!(summary.staleness_ms.len(), 2);
        assert!(summary.dirty_classes.contains(&u64::MAX), "whole-db answers must invalidate");
        assert!(summary.dirty_classes.contains(&0) || summary.dirty_classes.contains(&1));
        assert_eq!(eng.pending(), 0);
        // an empty epoch publishes cleanly and dirties nothing
        let empty = eng.publish_epoch();
        assert_eq!((empty.epoch, empty.mutations), (2, 0));
        assert!(empty.dirty_classes.is_empty());
    }

    #[test]
    fn snapshot_round_trips_with_epoch() {
        let (mut eng, _) = engine();
        eng.apply(&Op::AddEdge { graph: 1, u: 0, v: 2, etype: 0 }).unwrap();
        eng.publish_epoch();
        let path =
            std::env::temp_dir().join(format!("gvex-ingest-snap-{}.gvex", std::process::id()));
        eng.snapshot(&path).expect("snapshot writes");
        let store = gvex_store::Store::open(&path).expect("snapshot reopens");
        assert_eq!(store.meta().epoch, 1);
        assert_eq!(store.num_graphs(), eng.db().len());
        let views = ExplanationViewSet::from_json(store.views_json().expect("views stored"))
            .expect("views decode");
        assert_eq!(views.to_json(), eng.views_set().to_json(), "views must round-trip bitwise");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn graph_edit_helpers_edit_precisely() {
        let g = motif_graph(4);
        let (n, m) = (g.num_nodes(), g.num_edges());
        let plus = with_edge_added(&g, 0, 2, 0);
        assert_eq!((plus.num_nodes(), plus.num_edges()), (n, m + 1));
        assert!(plus.has_edge(0, 2));
        let minus = with_edge_removed(&plus, 2, 0); // reversed endpoints: undirected
        assert_eq!(minus.num_edges(), m);
        assert!(!minus.has_edge(0, 2));
        let grown = with_node_added(&g, 1, &[0.5, 0.5, 0.0], &[0, 3], 0);
        assert_eq!((grown.num_nodes(), grown.num_edges()), (n + 1, m + 2));
        assert!(grown.has_edge(0, n) && grown.has_edge(3, n));
        let shrunk = with_node_removed(&g, 0);
        assert_eq!(shrunk.num_nodes(), n - 1);
        assert_eq!(shrunk.num_edges(), m - 1, "node 0 had one incident edge");
    }
}
