//! `gvex-ingest`: high-rate streaming ingest with incremental view
//! maintenance.
//!
//! The paper's dynamic story (Example 2.1, IncPGen/IncPMatch, Procedures
//! 4–5) says explanation views should be *patched*, not regenerated, when
//! the classified database changes. This crate makes that operational:
//!
//! * [`log`] — the append-only, typed, replayable mutation log
//!   (edge/node/graph insert-deletes as JSON Lines);
//! * [`engine`] — [`engine::IngestEngine`] applies mutations against a
//!   live database, routes each to the affected label's view through
//!   [`gvex_core::ViewMaintainer`], batches them into **epochs**, and
//!   writes `.gvex` epoch snapshots; [`engine::check_equivalent`] pins
//!   the incremental-equals-recompute contract;
//! * [`gen`] — seeded workload synthesis (`gvex ingest gen`).
//!
//! `gvex-serve` consumes this crate for the `mutate` request kind: the
//! daemon keeps answering from the last published epoch while mutations
//! accumulate, then swaps a freshly materialized state and invalidates
//! exactly the dirty `(fingerprint, class)` answer-cache entries. See
//! DESIGN.md §16.

pub mod engine;
pub mod gen;
pub mod log;

pub use engine::{
    check_equivalent, rebuild_views, EpochSummary, Equivalence, IngestEngine, IngestError,
    IngestStats,
};
pub use gen::{generate, GenProfile};
pub use log::{parse_jsonl, read_log, to_jsonl, write_log, LogError, Mutation, Op};
