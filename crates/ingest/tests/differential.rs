//! Property-based differential suite: randomized mutation sequences
//! replayed through the incremental [`IngestEngine`] must land on the same
//! views a full from-scratch recompute produces — same coverage, bitwise
//! scores, byte-identical subgraph tiers — at 1 and at 4 mining threads.
//!
//! The trained fixture is built once (`OnceLock`); each case replays a
//! generated mutation log (the generator mirrors its own ops against
//! scratch state, so every record is valid in sequence) and pins:
//!
//! 1. incremental end state ≡ `rebuild_views` at 1 thread,
//! 2. incremental end state ≡ `rebuild_views` at 4 threads,
//! 3. the two rebuilds serialize byte-identically (thread count must not
//!    leak into the output),
//! 4. replaying the same log twice yields byte-identical engine views
//!    (the incremental path itself is deterministic).

use gvex_core::Configuration;
use gvex_gnn::{trainer, GcnConfig, GcnModel};
use gvex_graph::{Graph, GraphDatabase};
use gvex_ingest::{check_equivalent, generate, rebuild_views, GenProfile, IngestEngine};
use proptest::prelude::*;
use std::sync::OnceLock;

fn motif_graph(chain: usize) -> Graph {
    let mut b = Graph::builder(false);
    for _ in 0..chain {
        b.add_node(0, &[1.0, 0.0, 0.0]);
    }
    let m1 = b.add_node(1, &[0.0, 1.0, 0.0]);
    let m2 = b.add_node(2, &[0.0, 0.0, 1.0]);
    for v in 1..chain {
        b.add_edge(v - 1, v, 0);
    }
    b.add_edge(chain - 1, m1, 0);
    b.add_edge(m1, m2, 0);
    b.build()
}

fn plain_graph(chain: usize) -> Graph {
    let mut b = Graph::builder(false);
    for _ in 0..chain {
        b.add_node(0, &[1.0, 0.0, 0.0]);
    }
    for v in 1..chain {
        b.add_edge(v - 1, v, 0);
    }
    b.build()
}

struct Fixture {
    db: GraphDatabase,
    model: GcnModel,
    cfg: Configuration,
    views_json: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut db = GraphDatabase::new(vec!["plain".into(), "motif".into()]);
        for i in 0..6 {
            db.push(plain_graph(5 + i % 2), 0);
            db.push(motif_graph(4 + i % 2), 1);
        }
        let split = trainer::Split {
            train: (0..db.len()).collect(),
            val: (0..db.len()).collect(),
            test: vec![],
        };
        let gcfg = GcnConfig { input_dim: 3, hidden: 8, layers: 2, num_classes: 2 };
        let opts = trainer::TrainOptions {
            epochs: 80,
            lr: 0.01,
            seed: 1,
            patience: 0,
            ..Default::default()
        };
        let (model, _) = trainer::train(&db, gcfg, &split, opts);
        let cfg = Configuration::uniform(0.05, 0.3, 0.5, 0, 4);
        let views_json = rebuild_views(&model, &db, &cfg, 1).to_json();
        Fixture { db, model, cfg, views_json }
    })
}

/// Replays `count` generated mutations (profile picked by `churn`) through
/// a fresh engine over the fixture and returns it.
fn replayed(seed: u64, count: usize, churn: bool) -> IngestEngine {
    let fix = fixture();
    let profile = if churn { GenProfile::Churn } else { GenProfile::Localized };
    let muts = generate(&fix.db, count, seed, profile);
    let views = gvex_core::ExplanationViewSet::from_json(&fix.views_json).expect("views decode");
    let mut engine =
        IngestEngine::new("TEST", 7, fix.db.clone(), fix.model.clone(), fix.cfg.clone(), views, 0)
            .expect("fixture views boot the engine");
    for (i, m) in muts.iter().enumerate() {
        let op = m.parse().unwrap_or_else(|e| panic!("generated record {i} does not parse: {e}"));
        engine.apply(&op).unwrap_or_else(|e| panic!("generated op {i} rejected: {e}"));
    }
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline differential: incremental ≡ recompute at both thread
    /// counts, with the recomputes byte-identical to each other.
    #[test]
    fn incremental_matches_recompute_at_1_and_4_threads(
        seed in 0u64..1_000_000,
        count in 1usize..20,
        churn in any::<bool>(),
    ) {
        let fix = fixture();
        let engine = replayed(seed, count, churn);
        let inc = engine.views_set();
        let full_1 = rebuild_views(engine.model(), engine.db(), &fix.cfg, 1);
        let full_4 = rebuild_views(engine.model(), engine.db(), &fix.cfg, 4);
        prop_assert_eq!(
            full_1.to_json(),
            full_4.to_json(),
            "recompute output depends on thread count"
        );
        let eq = check_equivalent(&inc, &full_1, &fix.cfg);
        prop_assert!(eq.ok, "incremental != recompute @1 thread: {}", eq.detail);
        let eq = check_equivalent(&inc, &full_4, &fix.cfg);
        prop_assert!(eq.ok, "incremental != recompute @4 threads: {}", eq.detail);
    }

    /// Replay determinism: the same mutation log applied twice serializes
    /// the same bytes — no hidden iteration-order or RNG dependence in the
    /// maintenance path.
    #[test]
    fn replay_is_deterministic(seed in 0u64..1_000_000, count in 1usize..20) {
        let a = replayed(seed, count, true).views_set().to_json();
        let b = replayed(seed, count, true).views_set().to_json();
        prop_assert_eq!(a, b, "incremental replay is not deterministic");
    }
}

/// A long mixed run (outside proptest so it always executes at full
/// length): 40 churn mutations with an epoch published every 5, then the
/// full differential at both thread counts.
#[test]
fn long_churn_replay_with_epochs_matches_recompute() {
    let fix = fixture();
    let muts = generate(&fix.db, 40, 99, GenProfile::Churn);
    let views = gvex_core::ExplanationViewSet::from_json(&fix.views_json).expect("views decode");
    let mut engine =
        IngestEngine::new("TEST", 7, fix.db.clone(), fix.model.clone(), fix.cfg.clone(), views, 0)
            .expect("fixture views boot the engine");
    for m in &muts {
        engine.apply(&m.parse().expect("record parses")).expect("op applies");
        if engine.pending() >= 5 {
            engine.publish_epoch();
        }
    }
    let inc = engine.views_set();
    for threads in [1usize, 4] {
        let full = rebuild_views(engine.model(), engine.db(), &fix.cfg, threads);
        let eq = check_equivalent(&inc, &full, &fix.cfg);
        assert!(eq.ok, "after 40 churn mutations @{threads} threads: {}", eq.detail);
    }
    assert!(engine.stats().epochs_published >= 7, "epochs should have been published");
}
