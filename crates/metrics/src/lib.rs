//! Explanation quality metrics (§6.1): Fidelity±, Sparsity, Compression.
//!
//! * **Fidelity+** (Eq. 8) — probability drop on the original class when the
//!   explanation subgraph is *removed*; high = the explanation was necessary
//!   (counterfactual).
//! * **Fidelity−** (Eq. 9) — probability drop when the prediction is made on
//!   the explanation subgraph *alone*; near/below zero = the explanation is
//!   sufficient (consistent).
//! * **Sparsity** (Eq. 10) — how little of the input the explanation keeps.
//! * **Compression** (Eq. 11) — size of the pattern tier relative to the
//!   subgraph tier; exclusive to GVEX's two-tier views (exposed on
//!   [`gvex_core::ExplanationView::compression`], re-aggregated here).

use gvex_core::{ExplanationView, NodeExplanation};
use gvex_gnn::GcnModel;
use gvex_graph::Graph;
use serde::{Deserialize, Serialize};

/// Aggregated quality of a set of per-graph explanations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExplanationQuality {
    /// Mean Fidelity+ (higher is better).
    pub fidelity_plus: f64,
    /// Mean Fidelity− (lower is better; ≤ 0 is ideal).
    pub fidelity_minus: f64,
    /// Mean sparsity in `[0, 1]` (higher = more concise).
    pub sparsity: f64,
    /// Number of graphs aggregated.
    pub count: usize,
}

/// Fidelity+ for one graph: `Pr(ℳ(G) = l_G) − Pr(ℳ(G \ G_s) = l_G)`.
pub fn fidelity_plus(model: &GcnModel, g: &Graph, expl: &NodeExplanation) -> f64 {
    let proba = model.predict_proba(g);
    let label = argmax(&proba);
    let masked = expl.complement(g);
    let proba_masked = model.predict_proba(&masked);
    proba[label] as f64 - proba_masked[label] as f64
}

/// Fidelity− for one graph: `Pr(ℳ(G) = l_G) − Pr(ℳ(G_s) = l_G)`.
pub fn fidelity_minus(model: &GcnModel, g: &Graph, expl: &NodeExplanation) -> f64 {
    let proba = model.predict_proba(g);
    let label = argmax(&proba);
    let sub = expl.subgraph(g);
    let proba_sub = model.predict_proba(&sub);
    proba[label] as f64 - proba_sub[label] as f64
}

/// Sparsity for one graph: `1 − (|V_s| + |E_s|) / (|V| + |E|)`.
pub fn sparsity(g: &Graph, expl: &NodeExplanation) -> f64 {
    let denom = (g.num_nodes() + g.num_edges()) as f64;
    if denom == 0.0 {
        return 0.0;
    }
    let sub = expl.subgraph(g);
    1.0 - (sub.num_nodes() + sub.num_edges()) as f64 / denom
}

/// Aggregates all three per-graph metrics over `(graph, explanation)`
/// pairs.
pub fn evaluate(model: &GcnModel, pairs: &[(&Graph, NodeExplanation)]) -> ExplanationQuality {
    if pairs.is_empty() {
        return ExplanationQuality::default();
    }
    let mut q = ExplanationQuality { count: pairs.len(), ..Default::default() };
    for (g, e) in pairs {
        q.fidelity_plus += fidelity_plus(model, g, e);
        q.fidelity_minus += fidelity_minus(model, g, e);
        q.sparsity += sparsity(g, e);
    }
    let n = pairs.len() as f64;
    q.fidelity_plus /= n;
    q.fidelity_minus /= n;
    q.sparsity /= n;
    q
}

/// Mean compression across a set of explanation views (Eq. 11).
pub fn mean_compression(views: &[ExplanationView]) -> f64 {
    if views.is_empty() {
        return 0.0;
    }
    views.iter().map(ExplanationView::compression).sum::<f64>() / views.len() as f64
}

/// Mean edge loss across views (the Fig. 8(c,d) quantity).
pub fn mean_edge_loss(views: &[ExplanationView]) -> f64 {
    if views.is_empty() {
        return 0.0;
    }
    views.iter().map(|v| v.edge_loss).sum::<f64>() / views.len() as f64
}

/// Ground-truth motif recovery: the fraction of explanations whose induced
/// subgraph contains the given motif (non-induced match — the motif may be
/// embedded in more context).
///
/// The paper validates patterns against domain knowledge ("P₁₁ and P₁₂ are
/// real toxicophores"); with *planted*-motif synthetic data the same check
/// becomes a quantitative metric: did the explainer keep the substructure
/// that actually causes the label?
pub fn motif_recovery_rate(pairs: &[(&Graph, NodeExplanation)], motif: &Graph) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let opts = gvex_iso::MatchOptions { induced: false, max_embeddings: 1000 };
    let hits = pairs.iter().filter(|(g, e)| gvex_iso::matches(motif, &e.subgraph(g), opts)).count();
    hits as f64 / pairs.len() as f64
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use gvex_gnn::GcnConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn graph() -> Graph {
        let mut b = Graph::builder(false);
        for i in 0..6 {
            b.add_node(0, &[(i % 2) as f32, 1.0]);
        }
        for i in 1..6 {
            b.add_edge(i - 1, i, 0);
        }
        b.build()
    }

    fn model() -> GcnModel {
        GcnModel::new(
            GcnConfig { input_dim: 2, hidden: 4, layers: 2, num_classes: 2 },
            &mut ChaCha8Rng::seed_from_u64(2),
        )
    }

    #[test]
    fn fidelity_plus_zero_for_empty_explanation() {
        let g = graph();
        let m = model();
        let e = NodeExplanation::default();
        // removing nothing changes nothing
        assert!(fidelity_plus(&m, &g, &e).abs() < 1e-6);
    }

    #[test]
    fn fidelity_minus_zero_for_full_explanation() {
        let g = graph();
        let m = model();
        let e = NodeExplanation::new((0..6).collect());
        // the explanation *is* the graph
        assert!(fidelity_minus(&m, &g, &e).abs() < 1e-6);
    }

    #[test]
    fn sparsity_bounds() {
        let g = graph();
        let empty = NodeExplanation::default();
        assert!((sparsity(&g, &empty) - 1.0).abs() < 1e-9);
        let full = NodeExplanation::new((0..6).collect());
        assert!(sparsity(&g, &full).abs() < 1e-9);
        let half = NodeExplanation::new(vec![0, 1, 2]);
        let s = sparsity(&g, &half);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn sparsity_of_empty_graph_is_zero() {
        let g = Graph::builder(false).build();
        assert_eq!(sparsity(&g, &NodeExplanation::default()), 0.0);
    }

    #[test]
    fn evaluate_averages() {
        let g = graph();
        let m = model();
        let pairs =
            vec![(&g, NodeExplanation::new(vec![0, 1])), (&g, NodeExplanation::new(vec![4, 5]))];
        let q = evaluate(&m, &pairs);
        assert_eq!(q.count, 2);
        let a = sparsity(&g, &pairs[0].1);
        let b = sparsity(&g, &pairs[1].1);
        assert!((q.sparsity - (a + b) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn evaluate_empty_is_default() {
        let m = model();
        assert_eq!(evaluate(&m, &[]), ExplanationQuality::default());
    }

    #[test]
    fn motif_recovery_counts_containment() {
        let g = {
            let mut b = Graph::builder(false);
            b.add_node(1, &[1.0, 0.0]); // N
            b.add_node(2, &[0.0, 1.0]); // O
            b.add_node(0, &[0.0, 0.0]); // C
            b.add_edge(0, 1, 0);
            b.add_edge(1, 2, 0);
            b.build()
        };
        let motif = {
            let mut b = Graph::builder(false);
            b.add_node(1, &[]);
            b.add_node(2, &[]);
            b.add_edge(0, 1, 0);
            b.build()
        };
        // explanation containing the motif vs one missing the O node
        let with = NodeExplanation::new(vec![0, 1]);
        let without = NodeExplanation::new(vec![1, 2]);
        let rate = motif_recovery_rate(&[(&g, with), (&g, without)], &motif);
        assert!((rate - 0.5).abs() < 1e-9);
        assert_eq!(motif_recovery_rate(&[], &motif), 0.0);
    }

    #[test]
    fn mean_helpers_empty() {
        assert_eq!(mean_compression(&[]), 0.0);
        assert_eq!(mean_edge_loss(&[]), 0.0);
    }
}
