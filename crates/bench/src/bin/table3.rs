//! Table 3: dataset statistics for the seven synthetic stand-ins.
//!
//! Prints the same columns as the paper (avg edges/nodes per graph, node
//! features, #graphs, #classes) and records the generated numbers next to
//! the paper's originals in `results/table3.json`.

use gvex_bench::harness::write_json;
use gvex_datasets::{dataset_stats, DatasetKind, Scale};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    avg_edges: f64,
    avg_nodes: f64,
    feature_dim: usize,
    num_graphs: usize,
    num_classes: usize,
    paper_avg_edges: f64,
    paper_avg_nodes: f64,
    paper_num_graphs: usize,
    paper_num_classes: usize,
}

/// Paper's Table 3 values: (avg edges, avg nodes, #graphs, #classes).
fn paper_row(kind: DatasetKind) -> (f64, f64, usize, usize) {
    match kind {
        DatasetKind::Mutagenicity => (31.0, 30.0, 4337, 2),
        DatasetKind::RedditBinary => (996.0, 430.0, 2000, 2),
        DatasetKind::Enzymes => (62.0, 33.0, 600, 6),
        DatasetKind::MalnetTiny => (2860.0, 1522.0, 5000, 5),
        DatasetKind::Pcqm4m => (31.0, 15.0, 3_746_619, 3),
        DatasetKind::Products => (5_728_239.0, 1_184_330.0, 1, 47),
        DatasetKind::Synthetic => (1_999_975.0, 400_275.0, 100, 2),
    }
}

fn main() {
    let scale = Scale::Bench;
    println!(
        "{:<6} {:>10} {:>10} {:>6} {:>8} {:>8}   (paper: edges/nodes/graphs/classes)",
        "data", "avg|E|", "avg|V|", "#NF", "#graphs", "#classes"
    );
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let db = kind.generate(scale, 42);
        let s = dataset_stats(&db);
        let (pe, pn, pg, pc) = paper_row(kind);
        println!(
            "{:<6} {:>10.1} {:>10.1} {:>6} {:>8} {:>8}   ({pe}/{pn}/{pg}/{pc})",
            kind.short_name(),
            s.avg_edges,
            s.avg_nodes,
            s.feature_dim,
            s.num_graphs,
            s.num_classes,
        );
        rows.push(Row {
            dataset: kind.short_name().to_string(),
            avg_edges: s.avg_edges,
            avg_nodes: s.avg_nodes,
            feature_dim: s.feature_dim,
            num_graphs: s.num_graphs,
            num_classes: s.num_classes,
            paper_avg_edges: pe,
            paper_avg_nodes: pn,
            paper_num_graphs: pg,
            paper_num_classes: pc,
        });
    }
    write_json("table3.json", &rows);
}
