//! Parameter study (§6.2, "we vary the parameters … various combinations of
//! (θ, r)" and γ): fidelity response on MUT across the explainability
//! thresholds. The paper's grid search lands on `(θ, r) = (0.08, 0.25)`,
//! `γ = 0.5`; this binary regenerates the sweep those numbers came from.

use gvex_bench::harness::{eval_method, prepare, write_json};
use gvex_core::{ApproxGvex, Configuration};
use gvex_datasets::{DatasetKind, Scale};
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct SweepPoint {
    theta: f32,
    r: f32,
    gamma: f32,
    fidelity_plus: f64,
    fidelity_minus: f64,
}

fn main() {
    let prep = prepare(DatasetKind::Mutagenicity, Scale::Bench, 42);
    eprintln!("classifier accuracy {:.3}", prep.accuracy);
    let budget = Duration::from_secs(120);
    let mut points = Vec::new();

    println!("\nFigure 7 — (θ, r) sweep on MUT (γ = 0.5, u_l = 10)\n");
    println!("{:>6} {:>6} {:>8} {:>8}", "theta", "r", "F+", "F-");
    for &theta in &[0.04_f32, 0.08, 0.16, 0.32] {
        for &r in &[0.1_f32, 0.25, 0.5] {
            let mut cfg = Configuration::uniform(theta, r, 0.5, 0, 10);
            cfg.seed = 42;
            let cell = eval_method(&prep, &ApproxGvex::new(cfg), 10, budget);
            println!(
                "{theta:>6.2} {r:>6.2} {:>8.3} {:>8.3}",
                cell.quality.fidelity_plus, cell.quality.fidelity_minus
            );
            points.push(SweepPoint {
                theta,
                r,
                gamma: 0.5,
                fidelity_plus: cell.quality.fidelity_plus,
                fidelity_minus: cell.quality.fidelity_minus,
            });
        }
    }

    println!("\nγ sweep on MUT ((θ, r) = (0.08, 0.25), u_l = 10)\n");
    println!("{:>6} {:>8} {:>8}", "gamma", "F+", "F-");
    for &gamma in &[0.0_f32, 0.25, 0.5, 0.75, 1.0] {
        let mut cfg = Configuration::uniform(0.08, 0.25, gamma, 0, 10);
        cfg.seed = 42;
        let cell = eval_method(&prep, &ApproxGvex::new(cfg), 10, budget);
        println!(
            "{gamma:>6.2} {:>8.3} {:>8.3}",
            cell.quality.fidelity_plus, cell.quality.fidelity_minus
        );
        points.push(SweepPoint {
            theta: 0.08,
            r: 0.25,
            gamma,
            fidelity_plus: cell.quality.fidelity_plus,
            fidelity_minus: cell.quality.fidelity_minus,
        });
    }

    write_json("fig7_param_sweep.json", &points);
}
