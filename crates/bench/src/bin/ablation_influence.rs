//! Ablation (DESIGN.md §5): the influence-estimation mode behind `EVerify`.
//!
//! Compares the expected-Jacobian default against the realized Jacobian and
//! the Monte-Carlo walk surrogate on MUT: explanation fidelity and per-graph
//! analysis cost. The paper's choice (expected Jacobian ≅ k-step walks) is
//! justified if fidelity matches the exact mode at a fraction of its cost.

use gvex_bench::harness::{eval_method, prepare, timed, write_json};
use gvex_core::{ApproxGvex, Configuration};
use gvex_datasets::{DatasetKind, Scale};
use gvex_influence::{InfluenceAnalysis, InfluenceMode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    mode: String,
    fidelity_plus: f64,
    fidelity_minus: f64,
    sparsity: f64,
    explain_seconds: f64,
    analysis_seconds_per_graph: f64,
}

fn main() {
    let prep = prepare(DatasetKind::Mutagenicity, Scale::Bench, 42);
    eprintln!("classifier accuracy {:.3}", prep.accuracy);
    let modes = [
        ("expected", InfluenceMode::Expected),
        ("realized", InfluenceMode::Realized),
        ("monte_carlo_128", InfluenceMode::MonteCarlo { walks: 128 }),
    ];
    let mut rows = Vec::new();

    println!(
        "{:<16} {:>8} {:>8} {:>9} {:>10} {:>12}",
        "mode", "F+", "F-", "sparsity", "explain(s)", "analysis(ms)"
    );
    for (name, mode) in modes {
        let cfg = Configuration::paper_mut(10).with_influence(mode);
        let cell = eval_method(&prep, &ApproxGvex::new(cfg), 10, Duration::from_secs(300));

        // isolate the per-graph analysis cost
        let g = prep.db.graph(prep.split.test[0]);
        let (_, analysis_secs) = timed(|| {
            for _ in 0..5 {
                let _ = InfluenceAnalysis::new(
                    &prep.model,
                    g,
                    0.08,
                    0.25,
                    0.5,
                    mode,
                    &mut ChaCha8Rng::seed_from_u64(0),
                );
            }
        });
        let per_graph_ms = analysis_secs / 5.0 * 1000.0;
        println!(
            "{name:<16} {:>8.3} {:>8.3} {:>9.3} {:>10.3} {:>12.3}",
            cell.quality.fidelity_plus,
            cell.quality.fidelity_minus,
            cell.quality.sparsity,
            cell.seconds,
            per_graph_ms
        );
        rows.push(Row {
            mode: name.to_string(),
            fidelity_plus: cell.quality.fidelity_plus,
            fidelity_minus: cell.quality.fidelity_minus,
            sparsity: cell.quality.sparsity,
            explain_seconds: cell.seconds,
            analysis_seconds_per_graph: per_graph_ms / 1000.0,
        });
    }
    write_json("ablation_influence.json", &rows);
}
