//! Figure 9 — efficiency, scalability, and parallelization:
//!
//! * (a, b) runtime per explainer on MUT and ENZ (paper: GVEX 1–2 orders of
//!   magnitude faster),
//! * (c) GVEX runtime across all seven datasets (competitors absent on MAL),
//! * (d) runtime vs. number of graphs on PCQ (paper: competitors > 24h at
//!   100k graphs, GVEX ≈ 8h; here everything scales down, the *shape* —
//!   near-linear growth, constant-factor gap — is the target),
//! * (e) parallel speedup of ApproxGVEX with 1/2/4/8 threads (paper: ~2×),
//! * (f) StreamGVEX runtime vs. the processed fraction of the node stream
//!   (paper: linear growth in batch size).

use gvex_bench::harness::{fidelity_grid, gvex_config, prepare, roster, timed, write_json};
use gvex_core::{explain_database, StreamGvex};
use gvex_datasets::{DatasetKind, Scale};
use gvex_gnn::GcnModel;
use gvex_graph::GraphDatabase;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize, Default)]
struct Fig9 {
    ab_runtime: Vec<(String, String, f64, bool)>, // (dataset, method, secs, timeout)
    c_runtime_all: Vec<(String, String, f64, bool)>,
    d_scaling: Vec<(usize, f64, f64)>, // (#graphs, AG secs, SG secs)
    e_parallel: Vec<(String, usize, f64)>, // (dataset, threads, secs)
    f_stream_batches: Vec<(f64, f64)>, // (fraction, secs)
}

fn main() {
    let mut out = Fig9::default();
    let uls = [5usize, 10, 15, 20];

    // Each figure section gets its own top-level span so a GVEX_OBS=1 run
    // reports a per-section phase breakdown alongside the printed timings.
    // The previous guard must drop *before* the next `enter`, otherwise the
    // sections would nest instead of forming siblings.
    let section = gvex_obs::span::enter("fig9.ab_grid");

    // (a, b): runtimes from the shared grid at u_l = 10
    let grid_sets = [
        DatasetKind::Mutagenicity,
        DatasetKind::Enzymes,
        DatasetKind::RedditBinary,
        DatasetKind::MalnetTiny,
    ];
    let cells = fidelity_grid(&grid_sets, &uls, Scale::Bench, Duration::from_secs(120));
    println!("\nFigure 9(a,b) — runtime (s) on MUT / ENZ (u_l = 10)\n");
    println!("{:<14} {:>8} {:>8}", "method", "MUT", "ENZ");
    for method in
        ["ApproxGVEX", "StreamGVEX", "GNNExplainer", "SubgraphX", "GStarX", "GCFExplainer"]
    {
        let mut line = format!("{method:<14}");
        for ds in ["MUT", "ENZ"] {
            if let Some(c) =
                cells.iter().find(|c| c.dataset == ds && c.method == method && c.u_l == 10)
            {
                line.push_str(&format!(" {:>8.2}", c.seconds));
                out.ab_runtime.push((ds.into(), method.into(), c.seconds, c.timed_out));
            }
        }
        println!("{line}");
    }

    drop(section);
    let section = gvex_obs::span::enter("fig9.c_all_datasets");

    // (c): all seven datasets; budget marks the paper's ">24h" dropouts
    println!("\nFigure 9(c) — runtime (s) across datasets (u_l = 10)\n");
    let budget = Duration::from_secs(60);
    for kind in DatasetKind::all() {
        let prep = prepare(kind, Scale::Bench, 42);
        for ex in roster(10) {
            // competitors only on the smaller datasets (mirrors the paper's
            // absent bars); GVEX runs everywhere
            let is_gvex = ex.name().contains("GVEX");
            let big = matches!(
                kind,
                DatasetKind::MalnetTiny | DatasetKind::Products | DatasetKind::Synthetic
            );
            if big && !is_gvex {
                continue;
            }
            let cell = gvex_bench::harness::eval_method(&prep, ex.as_ref(), 10, budget);
            println!(
                "{:<6} {:<14} {:>8.2}s{}",
                kind.short_name(),
                cell.method,
                cell.seconds,
                if cell.timed_out { "  TIMEOUT" } else { "" }
            );
            out.c_runtime_all.push((
                kind.short_name().into(),
                cell.method,
                cell.seconds,
                cell.timed_out,
            ));
        }
    }

    drop(section);
    let section = gvex_obs::span::enter("fig9.d_scaling");

    // (d): scaling in #graphs on PCQ-like data
    println!("\nFigure 9(d) — scaling with #graphs (PCQ)\n");
    println!("{:>8} {:>10} {:>10}", "#graphs", "AG (s)", "SG (s)");
    for &n in &[100usize, 200, 400, 800] {
        let db = gvex_datasets::molecules::PcqParams { num_graphs: n }.generate(42);
        let prep = prepare_from(DatasetKind::Pcqm4m, db);
        let labels: Vec<usize> = (0..prep.db.num_classes()).collect();
        let (_, ag_secs) = timed(|| {
            gvex_core::ApproxGvex::new(gvex_config(10)).explain(&prep.model, &prep.db, &labels)
        });
        let (_, sg_secs) =
            timed(|| StreamGvex::new(gvex_config(10)).explain(&prep.model, &prep.db, &labels));
        println!("{n:>8} {ag_secs:>10.2} {sg_secs:>10.2}");
        out.d_scaling.push((n, ag_secs, sg_secs));
    }

    drop(section);
    let section = gvex_obs::span::enter("fig9.e_parallel");

    // (e): parallel speedup on PRO and SYN at a scale where per-graph
    // influence analysis dominates (the paper's big-graph setting; the
    // classifier is trained briefly since only explanation time is
    // measured).
    println!("\nFigure 9(e) — parallel ApproxGVEX (s)\n");
    println!("{:<6} {:>4} {:>10}", "data", "p", "secs");
    let big_pro = gvex_datasets::products::ProductsParams {
        categories: 8,
        community_size: 120,
        samples: 120,
        feature_dim: 16,
    }
    .generate(42);
    let big_syn =
        gvex_datasets::synthetic::SyntheticParams { num_graphs: 16, base_nodes: 1200, motifs: 8 }
            .generate(42);
    for (kind, db) in [(DatasetKind::Products, big_pro), (DatasetKind::Synthetic, big_syn)] {
        let prep = prepare_from_with_epochs(kind, db, 30);
        let labels: Vec<usize> = (0..prep.db.num_classes()).collect();
        for &threads in &[1usize, 2, 4, 8] {
            let (_, secs) = timed(|| {
                explain_database(&prep.model, &prep.db, &labels, &gvex_config(10), threads)
            });
            println!("{:<6} {threads:>4} {secs:>10.2}", kind.short_name());
            out.e_parallel.push((kind.short_name().into(), threads, secs));
        }
    }

    drop(section);
    let section = gvex_obs::span::enter("fig9.f_stream");

    // (f): StreamGVEX vs processed stream fraction on MUT
    println!("\nFigure 9(f) — StreamGVEX runtime vs batch fraction (MUT)\n");
    println!("{:>8} {:>10}", "%stream", "secs");
    let prep = prepare(DatasetKind::Mutagenicity, Scale::Bench, 42);
    let sg = StreamGvex::new(gvex_config(10));
    for &frac in &[0.2_f64, 0.4, 0.6, 0.8, 1.0] {
        let (_, secs) = timed(|| {
            for &gi in &prep.split.test {
                let g = prep.db.graph(gi);
                let upto = ((g.num_nodes() as f64) * frac).ceil() as usize;
                let order: Vec<usize> = (0..upto.min(g.num_nodes())).collect();
                let _ = sg.explain_graph_stream(&prep.model, g, gi, Some(&order));
            }
        });
        println!("{:>7.0}% {secs:>10.3}", frac * 100.0);
        out.f_stream_batches.push((frac, secs));
    }

    drop(section);
    write_json("fig9_efficiency.json", &out);
    // with GVEX_OBS=1: per-section span tree to stderr + OBS_report.json
    gvex_obs::report::emit();
}

/// Wraps an externally generated database in a [`Prepared`] by training the
/// standard classifier on it.
fn prepare_from(kind: DatasetKind, db: GraphDatabase) -> gvex_bench::harness::Prepared {
    prepare_from_with_epochs(kind, db, 150)
}

fn prepare_from_with_epochs(
    kind: DatasetKind,
    db: GraphDatabase,
    epochs: usize,
) -> gvex_bench::harness::Prepared {
    use gvex_gnn::{train, trainer::TrainOptions, GcnConfig, Split};
    let split = Split::paper(&db, 42);
    let cfg = GcnConfig {
        input_dim: db.feature_dim().max(1),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let opts = TrainOptions { epochs, lr: 0.01, seed: 42, patience: 0, ..Default::default() };
    let (model, _): (GcnModel, _) = train(&db, cfg, &split, opts);
    let all: Vec<usize> = (0..db.len()).collect();
    let acc = gvex_gnn::trainer::accuracy(&model, &db, &all);
    gvex_bench::harness::Prepared { kind, db, model, split, accuracy: acc }
}
