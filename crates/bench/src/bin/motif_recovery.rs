//! Ground-truth motif recovery — a quantitative extension of the paper's
//! case studies. The paper validates patterns against domain knowledge
//! ("two of the patterns are real toxicophores as verified by domain
//! experts"); with planted-motif synthetic data the check becomes a metric:
//! for each explainer, the fraction of test graphs whose explanation
//! subgraph contains the class-causing motif.
//!
//! Datasets: SYN (house / 5-cycle motifs) and ENZ (per-class fold motifs).

use gvex_bench::harness::{prepare, roster, write_json};
use gvex_core::NodeExplanation;
use gvex_datasets::{proteins::class_motif, synthetic, DatasetKind, Scale};
use gvex_graph::Graph;
use gvex_metrics::motif_recovery_rate;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    method: String,
    recovery_rate: f64,
    graphs: usize,
}

fn main() {
    let mut rows = Vec::new();
    let u_l = 10;

    // SYN: class 0 planted houses, class 1 planted 5-cycles
    {
        let prep = prepare(DatasetKind::Synthetic, Scale::Bench, 42);
        eprintln!("SYN classifier accuracy {:.3}", prep.accuracy);
        println!("\nMotif recovery on SYN (u_l = {u_l}):\n");
        println!("{:<14} {:>9} {:>8}", "method", "recovery", "#graphs");
        for ex in roster(u_l) {
            let mut per_motif: Vec<(Graph, Vec<(&Graph, NodeExplanation)>)> = vec![
                (synthetic::house_pattern(), Vec::new()),
                (synthetic::cycle_pattern(), Vec::new()),
            ];
            for &gi in &prep.split.test {
                let g = prep.db.graph(gi);
                let class = prep.db.truth()[gi];
                let expl = ex.explain(&prep.model, g, u_l);
                per_motif[class].1.push((g, expl));
            }
            let mut hits = 0.0;
            let mut total = 0usize;
            for (motif, pairs) in &per_motif {
                hits += motif_recovery_rate(pairs, motif) * pairs.len() as f64;
                total += pairs.len();
            }
            let rate = if total == 0 { 0.0 } else { hits / total as f64 };
            println!("{:<14} {rate:>9.3} {total:>8}", ex.name());
            rows.push(Row {
                dataset: "SYN".into(),
                method: ex.name().to_string(),
                recovery_rate: rate,
                graphs: total,
            });
        }
    }

    // ENZ: six per-class fold motifs
    {
        let prep = prepare(DatasetKind::Enzymes, Scale::Bench, 42);
        eprintln!("ENZ classifier accuracy {:.3}", prep.accuracy);
        println!("\nMotif recovery on ENZ (u_l = {u_l}):\n");
        println!("{:<14} {:>9} {:>8}", "method", "recovery", "#graphs");
        for ex in roster(u_l) {
            let mut hits = 0.0;
            let mut total = 0usize;
            for class in 0..6 {
                let motif = class_motif(class);
                let pairs: Vec<(&Graph, NodeExplanation)> = prep
                    .split
                    .test
                    .iter()
                    .copied()
                    .filter(|&gi| prep.db.truth()[gi] == class)
                    .map(|gi| {
                        let g = prep.db.graph(gi);
                        (g, ex.explain(&prep.model, g, u_l))
                    })
                    .collect();
                hits += motif_recovery_rate(&pairs, &motif) * pairs.len() as f64;
                total += pairs.len();
            }
            let rate = if total == 0 { 0.0 } else { hits / total as f64 };
            println!("{:<14} {rate:>9.3} {total:>8}", ex.name());
            rows.push(Row {
                dataset: "ENZ".into(),
                method: ex.name().to_string(),
                recovery_rate: rate,
                graphs: total,
            });
        }
    }

    write_json("motif_recovery.json", &rows);
}
