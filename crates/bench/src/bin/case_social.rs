//! Case study 2 (Fig. 11): GNN-based social analysis on RED under three
//! coverage configurations.
//!
//! The paper's scenarios: the user cares about (i) only the
//! *online-discussion* class, (ii) only *question-answer*, or (iii) both —
//! and GVEX's patterns shift accordingly (star fragments vs. biclique
//! fragments vs. both).

use gvex_bench::harness::{gvex_config, prepare, write_json};
use gvex_core::{ApproxGvex, Configuration, CoverageBound};
use gvex_datasets::{DatasetKind, Scale};
use gvex_graph::Graph;
use serde::Serialize;

#[derive(Serialize)]
struct Scenario {
    name: String,
    labels: Vec<usize>,
    /// per label: (max pattern degree, #patterns) — stars show up as high-
    /// degree hubs, bicliques as degree-2+ fragments.
    pattern_stats: Vec<(usize, usize, usize)>,
}

fn max_pattern_degree(patterns: &[Graph]) -> usize {
    patterns.iter().flat_map(|p| (0..p.num_nodes()).map(|v| p.degree(v))).max().unwrap_or(0)
}

fn main() {
    let prep = prepare(DatasetKind::RedditBinary, Scale::Bench, 42);
    eprintln!("classifier accuracy {:.3}", prep.accuracy);
    let mut out = Vec::new();

    let scenarios: [(&str, Vec<usize>); 3] = [
        ("only online-discussion", vec![0]),
        ("only question-answer", vec![1]),
        ("both classes", vec![0, 1]),
    ];

    for (name, labels) in scenarios {
        // per-scenario configuration: generous coverage for the classes of
        // interest (the configurable knob the paper demonstrates)
        let cfg: Configuration =
            gvex_config(12).with_bounds(vec![CoverageBound::new(0, 12), CoverageBound::new(0, 12)]);
        let ag = ApproxGvex::new(cfg);
        let set = ag.explain(&prep.model, &prep.db, &labels);
        println!("\nScenario: {name}");
        let mut stats = Vec::new();
        for view in &set.views {
            let maxdeg = max_pattern_degree(&view.patterns);
            println!(
                "  label {} ({}): {} subgraphs, {} patterns, max pattern degree {}",
                view.label,
                prep.db.class_names[view.label],
                view.subgraphs.len(),
                view.patterns.len(),
                maxdeg,
            );
            stats.push((view.label, view.patterns.len(), maxdeg));
        }
        out.push(Scenario { name: name.to_string(), labels, pattern_stats: stats });
    }

    println!(
        "\n(The paper's reading: online-discussion explanations should surface star-like \
         fragments — higher-degree pattern hubs — while question-answer surfaces flatter \
         biclique fragments.)"
    );
    write_json("case_social.json", &out);
}
