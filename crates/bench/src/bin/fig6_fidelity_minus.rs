//! Figure 6: Fidelity− (consistency) vs. `u_l` across explainers/datasets.
//!
//! Paper shape: GVEX's two algorithms achieve the *lowest* Fidelity− on all
//! datasets (near or below zero), with ≤ 0.023 between ApproxGVEX and
//! StreamGVEX.

use gvex_bench::harness::{fidelity_grid, write_json};
use gvex_datasets::{DatasetKind, Scale};
use std::time::Duration;

fn main() {
    let datasets = [
        DatasetKind::Mutagenicity,
        DatasetKind::Enzymes,
        DatasetKind::RedditBinary,
        DatasetKind::MalnetTiny,
    ];
    let uls = [5usize, 10, 15, 20];
    let cells = fidelity_grid(&datasets, &uls, Scale::Bench, Duration::from_secs(120));

    println!("\nFigure 6 — Fidelity- (lower is better)\n");
    for ds in datasets.iter().map(|d| d.short_name()) {
        println!("[{ds}]");
        println!("{:<14} {:>7} {:>7} {:>7} {:>7}", "method", "u=5", "u=10", "u=15", "u=20");
        for method in
            ["ApproxGVEX", "StreamGVEX", "GNNExplainer", "SubgraphX", "GStarX", "GCFExplainer"]
        {
            let mut line = format!("{method:<14}");
            for &u in &uls {
                let cell =
                    cells.iter().find(|c| c.dataset == ds && c.method == method && c.u_l == u);
                match cell {
                    Some(c) if !c.timed_out => {
                        line.push_str(&format!(" {:>7.3}", c.quality.fidelity_minus))
                    }
                    Some(_) => line.push_str("   T/O "),
                    None => line.push_str("    -  "),
                }
            }
            println!("{line}");
        }
        println!();
    }
    let fig6: Vec<_> = cells
        .iter()
        .map(|c| {
            serde_json::json!({
                "dataset": c.dataset, "method": c.method, "u_l": c.u_l,
                "fidelity_minus": c.quality.fidelity_minus, "timed_out": c.timed_out,
            })
        })
        .collect();
    write_json("fig6_fidelity_minus.json", &fig6);
}
