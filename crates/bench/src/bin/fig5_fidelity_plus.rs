//! Figure 5: Fidelity+ (counterfactual strength) vs. the configuration
//! constraint `u_l`, across explainers and datasets.
//!
//! Paper shape to reproduce: ApproxGVEX and StreamGVEX at or near the top on
//! every dataset (a small gap allowed on MUT), competitors lower, and
//! methods absent on the large-graph datasets where they blow the time
//! budget.

use gvex_bench::harness::{fidelity_grid, write_json};
use gvex_datasets::{DatasetKind, Scale};
use std::time::Duration;

fn main() {
    let datasets = [
        DatasetKind::Mutagenicity,
        DatasetKind::Enzymes,
        DatasetKind::RedditBinary,
        DatasetKind::MalnetTiny,
    ];
    let uls = [5usize, 10, 15, 20];
    let cells = fidelity_grid(&datasets, &uls, Scale::Bench, Duration::from_secs(120));

    println!("\nFigure 5 — Fidelity+ (higher is better)\n");
    for ds in datasets.iter().map(|d| d.short_name()) {
        println!("[{ds}]");
        println!("{:<14} {:>7} {:>7} {:>7} {:>7}", "method", "u=5", "u=10", "u=15", "u=20");
        for method in
            ["ApproxGVEX", "StreamGVEX", "GNNExplainer", "SubgraphX", "GStarX", "GCFExplainer"]
        {
            let mut line = format!("{method:<14}");
            for &u in &uls {
                let cell =
                    cells.iter().find(|c| c.dataset == ds && c.method == method && c.u_l == u);
                match cell {
                    Some(c) if !c.timed_out => {
                        line.push_str(&format!(" {:>7.3}", c.quality.fidelity_plus))
                    }
                    Some(_) => line.push_str("   T/O "),
                    None => line.push_str("    -  "),
                }
            }
            println!("{line}");
        }
        println!();
    }
    let fig5: Vec<_> = cells
        .iter()
        .map(|c| {
            serde_json::json!({
                "dataset": c.dataset, "method": c.method, "u_l": c.u_l,
                "fidelity_plus": c.quality.fidelity_plus, "timed_out": c.timed_out,
            })
        })
        .collect();
    write_json("fig5_fidelity_plus.json", &fig5);
}
