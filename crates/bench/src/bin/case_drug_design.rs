//! Case study 1 (Fig. 10): GNN-based drug design on MUT.
//!
//! Picks an NO2-bearing mutagen from the test split, runs every explainer at
//! the paper's Example 4.2 budget (u_l = 15), and checks who recovers the
//! real toxicophore — in the paper, GVEX finds NO₂ with a small
//! subgraph while GNNExplainer needs 14 atoms and the rest miss it.

use gvex_bench::harness::{format_pattern, gvex_config, prepare, roster, write_json};
use gvex_core::ApproxGvex;
use gvex_datasets::molecules::no2_pattern;
use gvex_datasets::{DatasetKind, Scale};
use gvex_iso::{matches, MatchOptions};
use serde::Serialize;

#[derive(Serialize)]
struct MethodRow {
    method: String,
    explanation_nodes: usize,
    found_no2: bool,
    found_nitro_fragment: bool,
    atoms: Vec<String>,
}

fn main() {
    let prep = prepare(DatasetKind::Mutagenicity, Scale::Bench, 42);
    eprintln!("classifier accuracy {:.3}", prep.accuracy);
    let no2 = no2_pattern();
    let opts = MatchOptions { induced: false, max_embeddings: 100 };

    // first correctly-classified test mutagen that actually carries the NO2
    // toxicophore (mutagens may carry the NH2 toxicophore instead)
    let target = prep
        .split
        .test
        .iter()
        .copied()
        .find(|&gi| {
            prep.db.truth()[gi] == 1
                && prep.model.predict(prep.db.graph(gi)) == 1
                && matches(&no2, prep.db.graph(gi), opts)
        })
        .expect("a correctly-classified NO2 mutagen exists in the test split");
    let g = prep.db.graph(target);
    println!(
        "\nCase study 1 — explaining mutagen #{target} ({} atoms, {} bonds)\n",
        g.num_nodes(),
        g.num_edges()
    );

    // the N-O "nitro fragment": the toxicophore core. Coverage-style
    // objectives (GVEX's Eq. 2) deduplicate the two chemically identical
    // oxygens — the second O adds no marginal influence once N and one O
    // are selected — while per-node attribution methods (Shapley-style)
    // credit both symmetrically. Reporting both criteria makes that
    // difference visible instead of hiding it.
    let nitro_fragment = {
        let mut b = gvex_graph::Graph::builder(false);
        let n = b.add_node(1, &[]);
        let o = b.add_node(2, &[]);
        b.add_edge(n, o, 0);
        b.build()
    };
    let mut rows = Vec::new();
    for ex in roster(15) {
        let expl = ex.explain(&prep.model, g, 15);
        let sub = expl.subgraph(g);
        let found = matches(&no2, &sub, opts);
        let found_fragment = matches(&nitro_fragment, &sub, opts);
        let atoms: Vec<String> =
            expl.nodes.iter().map(|&v| prep.db.node_types.name(g.node_type(v))).collect();
        println!(
            "{:<14} {:>2} atoms  NO2: {}  N-O: {}  [{}]",
            ex.name(),
            expl.len(),
            if found { "FOUND" } else { "miss " },
            if found_fragment { "FOUND" } else { "miss " },
            atoms.join(" ")
        );
        rows.push(MethodRow {
            method: ex.name().to_string(),
            explanation_nodes: expl.len(),
            found_no2: found,
            found_nitro_fragment: found_fragment,
            atoms,
        });
    }

    // GVEX's two-tier view: show the mined patterns for the mutagen class
    let ag = ApproxGvex::new(gvex_config(15));
    let assigned: Vec<usize> = prep.db.graphs().iter().map(|g| prep.model.predict(g)).collect();
    let groups = prep.db.label_groups(&assigned);
    let mutagen_test: Vec<usize> =
        prep.split.test.iter().copied().filter(|gi| groups.group(1).contains(gi)).collect();
    let view = ag.explain_label_group(&prep.model, &prep.db, 1, &mutagen_test);
    println!("\nGVEX explanation view for label 'mutagen' ({} subgraphs):", view.subgraphs.len());
    let mut pattern_strs = Vec::new();
    for (i, p) in view.patterns.iter().enumerate() {
        let s = format_pattern(p, &prep.db.node_types);
        let is_no2 = gvex_iso::are_isomorphic(p, &no2);
        println!("  P{i}: {s}{}", if is_no2 { "   <-- the NO2 toxicophore" } else { "" });
        pattern_strs.push(s);
    }
    println!(
        "view: compression {:.3}, edge loss {:.4}, explainability {:.3}",
        view.compression(),
        view.edge_loss,
        view.explainability
    );

    write_json(
        "case_drug_design.json",
        &serde_json::json!({ "methods": rows, "gvex_patterns": pattern_strs,
            "compression": view.compression(), "edge_loss": view.edge_loss }),
    );
}
