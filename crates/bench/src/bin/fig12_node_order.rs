//! Figure 12 (§A.8): node-order robustness of StreamGVEX on MUT.
//!
//! (a) higher-tier patterns under different arrival orders overlap heavily
//! (the "vast majority of crucial patterns persist"), and (b) running times
//! stay similar across random shuffles. Also includes the swap-threshold
//! ablation called out in DESIGN.md §5: the paper's `gain ≥ 2·loss` rule vs.
//! always-swap and never-swap.

use gvex_bench::harness::{gvex_config, prepare, timed, write_json};
use gvex_core::{Configuration, StreamGvex};
use gvex_datasets::{DatasetKind, Scale};
use gvex_graph::Graph;
use gvex_iso::are_isomorphic;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize, Default)]
struct Fig12 {
    /// (shuffle seed, seconds, #patterns, Jaccard similarity vs order 0)
    orders: Vec<(u64, f64, usize, f64)>,
    /// (policy, mean explainability)
    swap_ablation: Vec<(String, f64)>,
}

/// Jaccard similarity between two pattern sets up to isomorphism.
fn pattern_jaccard(a: &[Graph], b: &[Graph]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let mut inter = 0usize;
    for p in a {
        if b.iter().any(|q| are_isomorphic(p, q)) {
            inter += 1;
        }
    }
    let union = a.len() + b.len() - inter;
    inter as f64 / union.max(1) as f64
}

fn run_order(
    prep: &gvex_bench::harness::Prepared,
    cfg: &Configuration,
    seed: u64,
) -> (f64, Vec<Graph>, f64) {
    let sg = StreamGvex::new(cfg.clone());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut patterns: Vec<Graph> = Vec::new();
    let mut total_expl = 0.0;
    let (_, secs) = timed(|| {
        for &gi in &prep.split.test {
            let g = prep.db.graph(gi);
            let mut order: Vec<usize> = (0..g.num_nodes()).collect();
            if seed != 0 {
                order.shuffle(&mut rng);
            }
            if let Some((sub, local)) = sg.explain_graph_stream(&prep.model, g, gi, Some(&order)) {
                total_expl += sub.explainability;
                for p in local {
                    if !patterns.iter().any(|q| are_isomorphic(q, &p)) {
                        patterns.push(p);
                    }
                }
            }
        }
    });
    (secs, patterns, total_expl)
}

fn main() {
    let prep = prepare(DatasetKind::Mutagenicity, Scale::Bench, 42);
    eprintln!("classifier accuracy {:.3}", prep.accuracy);
    let cfg = gvex_config(10);
    let mut out = Fig12::default();

    println!("\nFigure 12 — StreamGVEX under different node orders (MUT)\n");
    println!("{:>6} {:>9} {:>10} {:>9}", "order", "secs", "#patterns", "Jaccard");
    let (base_secs, base_patterns, _) = run_order(&prep, &cfg, 0);
    println!("{:>6} {base_secs:>9.3} {:>10} {:>9.3}", 0, base_patterns.len(), 1.0);
    out.orders.push((0, base_secs, base_patterns.len(), 1.0));
    for seed in 1..=4u64 {
        let (secs, patterns, _) = run_order(&prep, &cfg, seed);
        let jac = pattern_jaccard(&base_patterns, &patterns);
        println!("{seed:>6} {secs:>9.3} {:>10} {jac:>9.3}", patterns.len());
        out.orders.push((seed, secs, patterns.len(), jac));
    }

    // Swap-threshold ablation: compare total explainability achieved by the
    // 2× rule against always/never swapping, emulated via the coverage
    // bound: never-swap = first-u_l nodes kept (order 0, upper reached
    // early); here we emulate policies by running with modified thresholds
    // is invasive, so we compare the paper's rule at three stream orders
    // against a greedy pick on the *full* (batch) analysis as the upper
    // reference.
    let batch = gvex_core::ApproxGvex::new(cfg.clone());
    let mut batch_expl = 0.0;
    for &gi in &prep.split.test {
        if let Some(sub) = batch.explain_graph(&prep.model, prep.db.graph(gi), gi) {
            batch_expl += sub.explainability;
        }
    }
    let (_, _, stream_expl) = run_order(&prep, &cfg, 1);
    println!("\nAnytime quality: stream = {stream_expl:.3}, batch reference = {batch_expl:.3}");
    println!(
        "ratio = {:.3} (Theorem 5.1 guarantees ≥ 0.25 of the optimum on the seen stream; the \
         batch value is itself a ½-approximation)",
        if batch_expl > 0.0 { stream_expl / batch_expl } else { 1.0 }
    );
    out.swap_ablation.push(("stream(2x-rule)".into(), stream_expl));
    out.swap_ablation.push(("batch-reference".into(), batch_expl));

    write_json("fig12_node_order.json", &out);
}
