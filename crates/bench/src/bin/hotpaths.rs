//! Hot-path benchmark — writes `BENCH_hotpaths.json` at the workspace root
//! so successive PRs have a perf trajectory to beat.
//!
//! Three measurements, the first two against the *retained reference
//! kernels* in the same run (interleaved min-of-N, which is the robust
//! estimator on a noisy shared box):
//!
//! 1. 256×256×256 dense matmul: [`Matrix::matmul`] (tiled + FMA
//!    micro-kernel) vs [`Matrix::matmul_reference`] — GFLOP/s and speedup
//!    (target ≥ 3×).
//! 2. Realized-Jacobian construction on a 128-node graph with a 3-layer
//!    hidden-64 GCN: [`gvex_influence::realized`] (batched seed blocks with
//!    hop-support tracking) vs [`gvex_influence::realized_reference`] (one
//!    propagation per seed) — seeds/s and speedup (target ≥ 2×).
//! 3. Disabled-observability overhead: the same matmul raced with and
//!    without a `gvex_obs` span/counter around each call while observation
//!    is off (target: ratio ≈ 1.0, i.e. statistically zero), plus the
//!    direct per-op cost of a full disabled macro set.
//! 4. VF2 subgraph matching: the bitset candidate-frontier engine (with a
//!    prebuilt [`MatchIndex`]) vs the retained reference engine, racing a
//!    6-node typed path pattern against a ~200-node target (target ≥ 3×).
//!    Both engines must report the same embedding count.
//! 5. End-to-end `explain_database` wall time on a small motif database,
//!    at 1 and 4 threads (identical output by construction; the adaptive
//!    fan-out gate must keep the 4-thread run from regressing on a
//!    workload this small), then on a larger database whose workload
//!    clears `GVEX_PAR_THRESHOLD` and fans out on multi-core hardware
//!    (on a single-core container the gate's hardware clamp keeps both
//!    sizes sequential, so the ratio stays ≈ 1.0 there too).
//!    A final run repeats the small 4-thread explain with observation
//!    *enabled*, checks the output is bitwise identical, exercises the
//!    bitset matcher / truncation cap / embedding-reuse paths so their
//!    counters are present, verifies the views through a shared
//!    `TraceCache`, and emits the obs run report (`OBS_report.json`) as
//!    the phase breakdown for this benchmark.
//! 6. Block-diagonal batched execution: database-wide inference through
//!    one fused forward (`GraphBatch` + `forward_batch`) vs per-graph
//!    passes with the same precomputed operators (target ≥ 2× at batch
//!    32), and mini-batch training (`batch_size = 16`) vs per-graph
//!    steps over identical epochs (target ≥ 1.5×).
//! 7. Kernel-backend races (`gvex_linalg::backend`): the same call sites
//!    run under `GVEX_BACKEND=scalar` (reference loops) and `simd`
//!    (autovectorized lane kernels) via `set_active`, switched inside each
//!    race arm — 256³ dense matmul, block-diagonal SpMM on a packed
//!    operator, and the segmented column-sum readout (targets ≥ 1.5×,
//!    ≥ 1.5×, ≥ 1.2×). A final parity section trains a model, then checks
//!    the two backends agree end to end: explain-view node selections
//!    identical, predicted labels identical, class probabilities and
//!    training gradients within 1e-5.
//! 8. Store serving (`gvex-store`): a full cold start (generate the MUT
//!    dataset, train the classifier, mine every class's views) raced
//!    against the warm path (memory-map the `.gvex` container, parse the
//!    stored views, classify every graph zero-copy off the mapped CSR
//!    columns). CI gates warm ≥ 10× faster with identical selections and
//!    labels; `db_open` additionally reports the bare `Store::open` cost.
//! 9. Serving QPS (`gvex-serve`): a warm daemon (4 workers, answer cache)
//!    replaying a fixed Zipfian request mix from 4 concurrent clients vs
//!    the same requests each paying a full per-request `ServeState::open`.
//!    CI gates warm ≥ 10× the cold throughput with byte-identical bodies;
//!    client-side p50/p99 latencies ride along. A second arm replays the
//!    same Zipfian reads while a writer streams `mutate` batches with
//!    commits — p50/p99 under live ingest, epochs observed via the
//!    generation counter.
//! 10. Ingest (`gvex-ingest`): a localized mutation stream applied against
//!     the benchmark store with incremental view maintenance
//!     (`IngestEngine::apply`, per-mutation refresh latency recorded) vs
//!     the same stream where every update pays a full per-class view
//!     recompute. CI gates incremental ≥ 10× on updates/s and requires the
//!     final incremental state to be equivalent to a from-scratch rebuild
//!     (the differential pin).

use gvex_bench::harness;
use gvex_core::exact::{greedy_selection, streaming_selection};
use gvex_core::verify::verify_view_with;
use gvex_core::{explain_database, Configuration, ExplainSession};
use gvex_datasets::{DatasetKind, Scale};
use gvex_gnn::propagation::NormAdj;
use gvex_gnn::{train, trainer::TrainOptions, GcnConfig, GcnModel, GraphBatch, Split, TraceCache};
use gvex_graph::{Graph, GraphDatabase, GraphRef};
use gvex_ingest::GenProfile;
use gvex_iso::{
    for_each_embedding, for_each_embedding_reference, for_each_embedding_with_index, MatchIndex,
    MatchOptions,
};
use gvex_linalg::backend::{self, BackendKind};
use gvex_linalg::Matrix;
use gvex_mining::MiningConfig;
use gvex_store::Store;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::hint::black_box;
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct MatmulBench {
    size: usize,
    reference_secs: f64,
    tiled_secs: f64,
    reference_gflops: f64,
    tiled_gflops: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct JacobianBench {
    nodes: usize,
    feature_dim: usize,
    hidden: usize,
    layers: usize,
    seeds: usize,
    reference_secs: f64,
    batched_secs: f64,
    reference_seeds_per_s: f64,
    batched_seeds_per_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ObsOverheadBench {
    /// Matmul dimension used for the raced pair.
    size: usize,
    /// Min-of-N seconds for the bare kernel call.
    baseline_secs: f64,
    /// Min-of-N seconds with a disabled span + counter around each call.
    instrumented_secs: f64,
    /// `instrumented / baseline`; ≈ 1.0 means statistically zero overhead.
    overhead_ratio: f64,
    /// Direct amortized cost of one disabled span! + counter! + histogram!
    /// set, in nanoseconds.
    disabled_macro_set_ns: f64,
    /// Min-of-N seconds with observation *enabled* (span + counter +
    /// histogram live, trace ring off).
    obs_on_secs: f64,
    /// Same with the trace ring also recording a begin/end pair per span.
    obs_on_trace_secs: f64,
    /// `obs_on_trace / obs_on`; CI gates this at ≤ 2× — the ring write must
    /// stay in the noise next to the observed kernel.
    trace_ring_ratio: f64,
}

#[derive(Serialize)]
struct Vf2Bench {
    target_nodes: usize,
    target_edges: usize,
    pattern_nodes: usize,
    /// Embeddings enumerated per run (identical for both engines).
    embeddings: usize,
    reference_secs: f64,
    bitset_secs: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct ExplainBench {
    graphs: usize,
    labels: usize,
    secs_1_thread: f64,
    secs_4_threads: f64,
    /// 4-thread run repeated with observation enabled.
    obs_secs_4_threads: f64,
    /// Whether the obs-enabled run produced bitwise-identical views.
    obs_identical: bool,
}

/// `explain_database` on a workload big enough to clear the adaptive
/// fan-out threshold (the small [`ExplainBench`] stays below it).
#[derive(Serialize)]
struct ExplainScaleBench {
    graphs: usize,
    avg_nodes: f64,
    secs_1_thread: f64,
    secs_4_threads: f64,
    /// Whether the two thread counts produced bitwise-identical views.
    identical: bool,
}

/// Session-reuse amortization: the same influence analyses consumed by
/// several selection algorithms per graph, through one shared
/// [`ExplainSession`] (each Jacobian differentiated once) vs. a fresh
/// session per selector call (each call recomputes it).
#[derive(Serialize)]
struct ExplainSessionBench {
    graphs: usize,
    /// Selector variants run per graph.
    algorithms: usize,
    /// Min-of-N seconds with a fresh session (fresh caches) per call.
    per_call_secs: f64,
    /// Min-of-N seconds with one session shared across all calls.
    session_secs: f64,
    speedup: f64,
    /// Whether both arms produced identical selections.
    identical: bool,
}

/// Database-wide inference: one graph at a time through the per-graph
/// forward vs the whole set packed into one block-diagonal batch. Both arms
/// reuse precomputed operators (per-graph adjacencies / the packed layout),
/// so the race isolates the fused-execution win (stacked dense products,
/// segmented readout, one FC head application) from operator construction.
#[derive(Serialize)]
struct BatchedForwardBench {
    graphs: usize,
    avg_nodes: f64,
    /// Min-of-N seconds classifying every graph individually.
    per_graph_secs: f64,
    /// Min-of-N seconds classifying the prebuilt batch in one fused pass.
    batched_secs: f64,
    speedup: f64,
    /// Whether both arms assigned identical labels.
    identical: bool,
}

/// Mini-batch training epochs: `batch_size = 1` (per-graph steps) vs
/// `batch_size = 16` (block-diagonal fused steps) over the same database,
/// epochs, and seed.
#[derive(Serialize)]
struct BatchedTrainBench {
    graphs: usize,
    epochs: usize,
    batch_size: usize,
    /// Min-of-N seconds for the per-graph training run.
    per_graph_secs: f64,
    /// Min-of-N seconds for the mini-batch training run.
    batched_secs: f64,
    speedup: f64,
}

/// One hot kernel raced through its normal call site under the `scalar`
/// and `simd` backends (switched with `backend::set_active` inside each
/// race arm, restored from the environment afterwards).
#[derive(Serialize)]
struct BackendKernelBench {
    /// Human-readable problem shape, e.g. `"256x256x256"`.
    shape: String,
    backend_scalar_secs: f64,
    backend_simd_secs: f64,
    speedup: f64,
}

/// End-to-end agreement between the two kernel backends on a trained
/// model: explanation selections and labels must be identical; class
/// probabilities and training gradients within the 1e-5 pin.
#[derive(Serialize)]
struct BackendParityBench {
    graphs: usize,
    /// Explain-view node selections (per label, per graph) are identical.
    selections_identical: bool,
    /// Predicted labels over the whole database are identical.
    labels_identical: bool,
    /// Max |Δ| across all per-graph class probabilities.
    max_proba_diff: f32,
    /// Max |Δ| across one batched backward's gradient matrices.
    max_grad_diff: f32,
}

/// Bare `Store::open` on a freshly written `.gvex` container: header,
/// section table, and per-section CRC validation over the mapped bytes,
/// with O(1) allocation regardless of payload size.
#[derive(Serialize)]
struct DbOpenBench {
    /// `.gvex` file length in bytes.
    file_bytes: u64,
    /// Sections in the container's table.
    sections: usize,
    /// How the bytes were brought in: `"mmap"` or the `"read"` fallback.
    mapping: String,
    /// Min-of-N seconds for `Store::open` alone.
    open_secs: f64,
    /// Mapped megabytes validated and served per second of open time.
    mapped_mb_per_s: f64,
}

/// One-shot cold start (generate + train + mine) vs min-of-N warm serve
/// (open the store, parse the stored views, classify every graph straight
/// off the mapped CSR columns). CI gates the speedup at ≥ 10×.
#[derive(Serialize)]
struct ServeFromDbBench {
    graphs: usize,
    /// One-shot seconds for the no-database path: dataset generation,
    /// classifier training, and single-threaded view mining.
    cold_secs: f64,
    /// Min-of-N seconds for open + view parse + database classification.
    warm_secs: f64,
    speedup: f64,
    /// Store-served view selections and predicted labels are identical to
    /// the in-memory ones (checked both zero-copy and via the harness's
    /// owned `prepare_from_store` path).
    identical: bool,
}

/// Sustained serving over TCP: an in-process `gvex serve` daemon with a
/// warm session pool and answer cache, driven by concurrent clients
/// replaying a Zipfian explain/node/query mix, vs answering a sample of
/// the same requests with a per-request cold start (open the store, build
/// the serving state, answer once, throw it away). CI gates the
/// throughput ratio at ≥ 10× and requires byte-identical answers.
#[derive(Serialize)]
struct ServeQpsBench {
    /// Requests replayed against the warm daemon.
    requests: usize,
    /// Concurrent client connections.
    clients: usize,
    /// Daemon worker threads.
    workers: usize,
    /// Warm daemon throughput (requests/s over the full replay).
    warm_qps: f64,
    /// Client-observed median round-trip, microseconds.
    warm_p50_us: f64,
    /// Client-observed 99th-percentile round-trip, microseconds.
    warm_p99_us: f64,
    /// Requests answered by the per-request cold-start arm.
    cold_requests: usize,
    /// Cold-start throughput (requests/s).
    cold_qps: f64,
    /// `warm_qps / cold_qps`.
    speedup: f64,
    /// Answer-cache hits during the warm replay.
    cache_hits: u64,
    /// Answer-cache misses during the warm replay.
    cache_misses: u64,
    /// Every concurrent response body matched the sequential in-process
    /// answer byte for byte.
    identical: bool,
    /// Read requests answered during the mixed read/write replay.
    mixed_requests: usize,
    /// Mutations streamed by the writer during the mixed replay.
    mixed_mutations: usize,
    /// Epochs the daemon published under the mixed load (generation delta).
    mixed_epochs: u64,
    /// Read throughput under live ingest (requests/s).
    mixed_qps: f64,
    /// Client-observed median read round-trip under ingest, microseconds.
    mixed_p50_us: f64,
    /// Client-observed 99th-percentile read round-trip under ingest.
    mixed_p99_us: f64,
}

/// A localized mutation stream against the benchmark store: incremental
/// view maintenance per update vs a full per-class recompute per update.
/// CI gates the updates/s ratio at ≥ 10× and the differential pin.
#[derive(Serialize)]
struct IngestBench {
    /// Graphs in the mutated database.
    graphs: usize,
    /// Mutations applied by the incremental arm.
    mutations: usize,
    /// Epochs published while applying them (every 8 mutations).
    epochs: u64,
    /// Maintainer patch operations performed.
    views_patched: u64,
    /// Seconds for the whole incremental stream.
    incremental_secs: f64,
    /// Incremental throughput (mutations folded into live views per second).
    incremental_updates_per_s: f64,
    /// Median per-mutation view-refresh latency, microseconds.
    refresh_p50_us: f64,
    /// 99th-percentile per-mutation view-refresh latency, microseconds.
    refresh_p99_us: f64,
    /// Updates the recompute arm paid for (each one a full re-mine).
    full_updates: usize,
    /// Seconds for the recompute arm.
    full_secs: f64,
    /// Recompute throughput (updates/s).
    full_updates_per_s: f64,
    /// `incremental_updates_per_s / full_updates_per_s`.
    speedup: f64,
    /// The incremental end state is equivalent to a from-scratch rebuild:
    /// byte-identical subgraph tiers, bitwise-equal scores, and patterns
    /// that cover every recomputed subgraph.
    differential_ok: bool,
}

#[derive(Serialize)]
struct Report {
    matmul_256: MatmulBench,
    realized_jacobian_128: JacobianBench,
    obs_overhead: ObsOverheadBench,
    vf2_match: Vf2Bench,
    explain_database: ExplainBench,
    explain_database_large: ExplainScaleBench,
    explain_session: ExplainSessionBench,
    batched_forward: BatchedForwardBench,
    batched_train_epoch: BatchedTrainBench,
    simd_matmul: BackendKernelBench,
    simd_spmm: BackendKernelBench,
    simd_segmented: BackendKernelBench,
    backend_parity: BackendParityBench,
    db_open: DbOpenBench,
    serve_from_db: ServeFromDbBench,
    serve_qps: ServeQpsBench,
    ingest: IngestBench,
}

/// Interleaved min-of-`rounds` timing of two closures: `a` and `b` alternate
/// within every round, so slow drift (thermal, noisy neighbours) hits both
/// equally instead of biasing whichever ran second.
fn race<A, B>(rounds: usize, mut a: A, mut b: B) -> (f64, f64)
where
    A: FnMut(),
    B: FnMut(),
{
    let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..rounds {
        let t = Instant::now();
        a();
        best_a = best_a.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        b();
        best_b = best_b.min(t.elapsed().as_secs_f64());
    }
    (best_a, best_b)
}

fn random_matrix(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
}

fn bench_matmul() -> MatmulBench {
    const N: usize = 256;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let a = random_matrix(N, N, &mut rng);
    let b = random_matrix(N, N, &mut rng);
    // warm-up so lazy page faults and frequency ramp don't count
    black_box(a.matmul(&b));
    black_box(a.matmul_reference(&b));
    let (ref_secs, tiled_secs) = race(
        7,
        || {
            black_box(a.matmul_reference(black_box(&b)));
        },
        || {
            black_box(a.matmul(black_box(&b)));
        },
    );
    let flops = 2.0 * (N * N * N) as f64;
    MatmulBench {
        size: N,
        reference_secs: ref_secs,
        tiled_secs,
        reference_gflops: flops / ref_secs / 1e9,
        tiled_gflops: flops / tiled_secs / 1e9,
        speedup: ref_secs / tiled_secs,
    }
}

/// A 128-node connected graph with average degree ≈ 9 (ring plus random
/// chords) and three node types — the connectivity of a small social /
/// interaction graph, where influence reaches most of the graph within
/// the model's receptive field.
fn ring_graph(n: usize, dim: usize) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut b = Graph::builder(false);
    for v in 0..n {
        let feats: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        b.add_node((v % 3) as u32, &feats);
    }
    for v in 0..n {
        b.add_edge(v, (v + 1) % n, 0);
        for _ in 0..4 {
            let u = rng.gen_range(0..n);
            if u != v {
                b.add_edge(v, u, 0);
            }
        }
    }
    b.build()
}

fn bench_jacobian() -> JacobianBench {
    const N: usize = 128;
    const DIM: usize = 8;
    let cfg = GcnConfig { input_dim: DIM, hidden: 64, layers: 3, num_classes: 2 };
    let model = GcnModel::new(cfg, &mut ChaCha8Rng::seed_from_u64(3));
    let g = ring_graph(N, DIM);
    black_box(gvex_influence::realized(&model, &g));
    black_box(gvex_influence::realized_reference(&model, &g));
    let (ref_secs, batched_secs) = race(
        11,
        || {
            black_box(gvex_influence::realized_reference(&model, black_box(&g)));
        },
        || {
            black_box(gvex_influence::realized(&model, black_box(&g)));
        },
    );
    let seeds = N * DIM;
    JacobianBench {
        nodes: N,
        feature_dim: DIM,
        hidden: cfg.hidden,
        layers: cfg.layers,
        seeds,
        reference_secs: ref_secs,
        batched_secs,
        reference_seeds_per_s: seeds as f64 / ref_secs,
        batched_seeds_per_s: seeds as f64 / batched_secs,
        speedup: ref_secs / batched_secs,
    }
}

/// Races the matmul hot loop bare vs. wrapped in a *disabled* span +
/// counter — the exact macro set the instrumented kernels execute when
/// `GVEX_OBS` is off. The kernel itself carries its own internal obs calls
/// in both closures, so the race isolates the marginal cost of one more
/// disabled macro layer.
fn bench_obs_overhead() -> ObsOverheadBench {
    // Force the runtime toggle off regardless of the environment: this
    // bench exists to prove the *disabled* path costs nothing.
    gvex_obs::set_enabled(false);
    const N: usize = 128;
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let a = random_matrix(N, N, &mut rng);
    let b = random_matrix(N, N, &mut rng);
    black_box(a.matmul(&b));
    let (baseline_secs, instrumented_secs) = race(
        15,
        || {
            black_box(a.matmul(black_box(&b)));
        },
        || {
            gvex_obs::span!("obs_overhead.matmul");
            gvex_obs::counter!("obs_overhead.calls");
            black_box(a.matmul(black_box(&b)));
        },
    );

    // Direct per-op cost of a full disabled macro set, amortized.
    const REPS: u64 = 1_000_000;
    let t = Instant::now();
    for i in 0..REPS {
        gvex_obs::span!("obs_overhead.op");
        gvex_obs::counter!("obs_overhead.ops");
        gvex_obs::histogram!("obs_overhead.hist", black_box(i));
    }
    let disabled_macro_set_ns = t.elapsed().as_nanos() as f64 / REPS as f64;

    // Enabled-path cost, raced with and without the trace ring. Each arm
    // sets the trace mode itself (one relaxed store) so the alternation
    // stays symmetric; a bench-scoped request tags the recorded spans so
    // this block also exercises per-request attribution under load.
    gvex_obs::set_enabled(true);
    let (obs_on_secs, obs_on_trace_secs) = race(
        15,
        || {
            gvex_obs::trace::force_active(false);
            let _req = gvex_obs::context::ReqScope::begin("bench.obs_overhead");
            gvex_obs::span!("obs_overhead.matmul_on");
            gvex_obs::counter!("obs_overhead.calls_on");
            black_box(a.matmul(black_box(&b)));
        },
        || {
            gvex_obs::trace::force_active(true);
            let _req = gvex_obs::context::ReqScope::begin("bench.obs_overhead");
            gvex_obs::span!("obs_overhead.matmul_trace");
            gvex_obs::counter!("obs_overhead.calls_trace");
            black_box(a.matmul(black_box(&b)));
        },
    );
    // Leave no residue for the explain bench's emitted report: wipe the
    // ring and every registry this block populated, and restore both
    // toggles to off.
    gvex_obs::trace::force_active(false);
    gvex_obs::trace::clear();
    gvex_obs::reset();
    gvex_obs::set_enabled(false);

    ObsOverheadBench {
        size: N,
        baseline_secs,
        instrumented_secs,
        overhead_ratio: instrumented_secs / baseline_secs,
        disabled_macro_set_ns,
        obs_on_secs,
        obs_on_trace_secs,
        trace_ring_ratio: obs_on_trace_secs / obs_on_secs,
    }
}

/// A 6-node typed path whose type sequence follows the ring graph's
/// `v % 3` labeling, so it embeds along the ring and its chords.
fn path_pattern() -> Graph {
    let mut b = Graph::builder(false);
    for i in 0..6 {
        b.add_node((i % 3) as u32, &[]);
    }
    for i in 1..6 {
        b.add_edge(i - 1, i, 0);
    }
    b.build()
}

fn bench_vf2() -> Vf2Bench {
    const N: usize = 192;
    let target = ring_graph(N, 2);
    let pattern = path_pattern();
    // Monomorphism semantics with a high cap: the interesting cost is the
    // feasibility checks per search node, not induced non-edge filtering.
    let opts = MatchOptions { induced: false, max_embeddings: 1_000_000 };
    let index = MatchIndex::build(&target);
    let count_ref = || {
        let mut n = 0usize;
        for_each_embedding_reference(&pattern, &target, opts, |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    };
    let count_bitset = || {
        let mut n = 0usize;
        for_each_embedding_with_index(&pattern, &target, &index, opts, |_| {
            n += 1;
            ControlFlow::Continue(())
        });
        n
    };
    let (embeddings, bitset_count) = (count_ref(), count_bitset());
    assert_eq!(embeddings, bitset_count, "engines disagree on the embedding set");
    let (reference_secs, bitset_secs) = race(
        9,
        || {
            black_box(count_ref());
        },
        || {
            black_box(count_bitset());
        },
    );
    Vf2Bench {
        target_nodes: N,
        target_edges: target.num_edges(),
        pattern_nodes: pattern.num_nodes(),
        embeddings,
        reference_secs,
        bitset_secs,
        speedup: reference_secs / bitset_secs,
    }
}

fn motif_graph(chain: usize) -> Graph {
    let mut b = Graph::builder(false);
    for _ in 0..chain {
        b.add_node(0, &[1.0, 0.0, 0.0]);
    }
    let m1 = b.add_node(1, &[0.0, 1.0, 0.0]);
    let m2 = b.add_node(2, &[0.0, 0.0, 1.0]);
    for v in 1..chain {
        b.add_edge(v - 1, v, 0);
    }
    b.add_edge(chain - 1, m1, 0);
    b.add_edge(m1, m2, 0);
    b.build()
}

fn plain_graph(chain: usize) -> Graph {
    let mut b = Graph::builder(false);
    for _ in 0..chain {
        b.add_node(0, &[1.0, 0.0, 0.0]);
    }
    for v in 1..chain {
        b.add_edge(v - 1, v, 0);
    }
    b.build()
}

fn bench_explain() -> (ExplainBench, ExplainScaleBench) {
    let mut db = GraphDatabase::new(vec!["plain".into(), "motif".into()]);
    for i in 0..10 {
        db.push(plain_graph(6 + i % 3), 0);
        db.push(motif_graph(5 + i % 3), 1);
    }
    let split =
        Split { train: (0..db.len()).collect(), val: (0..db.len()).collect(), test: vec![] };
    let gcfg = GcnConfig { input_dim: 3, hidden: 8, layers: 2, num_classes: 2 };
    let opts = TrainOptions { epochs: 80, lr: 0.01, seed: 1, patience: 0, ..Default::default() };
    let (model, _) = train(&db, gcfg, &split, opts);
    let labels: Vec<usize> = vec![0, 1];
    let cfg = Configuration::uniform(0.05, 0.3, 0.5, 0, 4);

    // Interleaved min-of-9 (same estimator as the kernel benches): the
    // runs are short enough that slow drift would otherwise dominate the
    // thread-count ratio the CI gates.
    let (secs_1, secs_4) = race(
        9,
        || {
            black_box(explain_database(&model, &db, &labels, &cfg, 1));
        },
        || {
            black_box(explain_database(&model, &db, &labels, &cfg, 4));
        },
    );
    let baseline = explain_database(&model, &db, &labels, &cfg, 4);

    // Repeat with observation enabled: the output must stay bitwise
    // identical, and the collected spans/counters become this benchmark's
    // phase breakdown (emitted to stderr + OBS_report.json).
    gvex_obs::set_enabled(true);
    let t = Instant::now();
    let observed = explain_database(&model, &db, &labels, &cfg, 4);
    let obs_secs_4 = t.elapsed().as_secs_f64();
    // Verify the views through one shared trace cache, twice: the second
    // pass re-sees every member graph, so the report carries a non-trivial
    // trace-cache hit rate alongside the PMatch/VF2 counters.
    let cache = TraceCache::new();
    for view in observed.views.iter().chain(observed.views.iter()) {
        black_box(verify_view_with(&cache, &model, &db, view, &cfg));
    }
    // Exercise the bitset matcher, the truncation cap, and Psum's
    // embedding-reuse path while observation is on: the tiny database
    // above matches through the reference engine only (targets < 32
    // nodes), so without this the counters those paths record —
    // `iso.vf2.frontier_prunes`, `iso.vf2.truncated`,
    // `mining.pgen.embedding_reuse_hits` — would be absent from the
    // emitted report.
    let big_target = ring_graph(64, 2);
    let mut capped = 0usize;
    for_each_embedding(
        &path_pattern(),
        &big_target,
        MatchOptions { induced: false, max_embeddings: 8 },
        |_| {
            capped += 1;
            ControlFlow::Continue(())
        },
    );
    black_box(capped);
    let mined_from = [motif_graph(6), motif_graph(7)];
    let refs: Vec<&Graph> = mined_from.iter().collect();
    black_box(gvex_core::psum::psum(&refs, &MiningConfig::default(), MatchOptions::default()));
    gvex_obs::report::emit();
    gvex_obs::set_enabled(false);
    let obs_identical = serde_json::to_string(&baseline).expect("views serialize")
        == serde_json::to_string(&observed).expect("views serialize");

    let small = ExplainBench {
        graphs: db.len(),
        labels: labels.len(),
        secs_1_thread: secs_1,
        secs_4_threads: secs_4,
        obs_secs_4_threads: obs_secs_4,
        obs_identical,
    };

    // Larger database: fewer but much bigger graphs, so the estimated
    // explain cost clears `GVEX_PAR_THRESHOLD` and the fan-out spawns
    // workers wherever the hardware has them (the same trained model
    // explains both databases).
    let mut large = GraphDatabase::new(vec!["plain".into(), "motif".into()]);
    for _ in 0..4 {
        large.push(plain_graph(42), 0);
        large.push(motif_graph(40), 1);
    }
    let (large_1, large_4) = race(
        7,
        || {
            black_box(explain_database(&model, &large, &labels, &cfg, 1));
        },
        || {
            black_box(explain_database(&model, &large, &labels, &cfg, 4));
        },
    );
    let first = explain_database(&model, &large, &labels, &cfg, 1);
    let second = explain_database(&model, &large, &labels, &cfg, 4);
    let identical = serde_json::to_string(&first).expect("views serialize")
        == serde_json::to_string(&second).expect("views serialize");
    let avg_nodes = large.graphs().iter().map(|g| g.num_nodes() as f64).sum::<f64>()
        / large.len().max(1) as f64;
    let scale = ExplainScaleBench {
        graphs: large.len(),
        avg_nodes,
        secs_1_thread: large_1,
        secs_4_threads: large_4,
        identical,
    };
    (small, scale)
}

/// One selector variant: the un-gated greedy, or the streaming swap rule
/// over a forward / reverse arrival order. All three consume the same
/// [`gvex_influence::analysis::InfluenceAnalysis`], which is the expensive
/// part — exactly the sharing a session exists to capture.
fn run_selector(a: &gvex_influence::analysis::InfluenceAnalysis, k: usize, n: usize) -> Vec<usize> {
    match k {
        0 => greedy_selection(a, 5).0,
        1 => {
            let fwd: Vec<usize> = (0..n).collect();
            streaming_selection(a, &fwd, 5).0
        }
        _ => {
            let rev: Vec<usize> = (0..n).rev().collect();
            streaming_selection(a, &rev, 5).0
        }
    }
}

fn bench_explain_session() -> ExplainSessionBench {
    const GRAPHS: usize = 8;
    const ALGOS: usize = 3;
    let graphs: Vec<Graph> = (0..GRAPHS).map(|i| ring_graph(40 + i, 8)).collect();
    let model = GcnModel::new(
        GcnConfig { input_dim: 8, hidden: 32, layers: 3, num_classes: 2 },
        &mut ChaCha8Rng::seed_from_u64(7),
    );
    let cfg = Configuration::uniform(0.05, 0.3, 0.5, 0, 5);

    // Per-call arm: what the free-function era did — every algorithm
    // invocation rebuilds its own analysis (GRAPHS × ALGOS Jacobians).
    let per_call = || -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        for (gi, g) in graphs.iter().enumerate() {
            for k in 0..ALGOS {
                let sess = ExplainSession::new(&model, cfg.clone()).expect("valid configuration");
                let a = sess.influence(g, gi);
                out.push(run_selector(&a, k, g.num_nodes()));
            }
        }
        out
    };
    // Session arm: one session for the whole batch; the influence memo
    // differentiates each graph once (GRAPHS Jacobians), every later
    // selector call on the same graph is a cache hit.
    let session_arm = || -> Vec<Vec<usize>> {
        let sess = ExplainSession::new(&model, cfg.clone()).expect("valid configuration");
        let mut out = Vec::new();
        for (gi, g) in graphs.iter().enumerate() {
            for k in 0..ALGOS {
                let a = sess.influence(g, gi);
                out.push(run_selector(&a, k, g.num_nodes()));
            }
        }
        out
    };

    let identical = per_call() == session_arm();
    let (per_call_secs, session_secs) = race(
        5,
        || {
            black_box(per_call());
        },
        || {
            black_box(session_arm());
        },
    );
    ExplainSessionBench {
        graphs: GRAPHS,
        algorithms: ALGOS,
        per_call_secs,
        session_secs,
        speedup: per_call_secs / session_secs,
        identical,
    }
}

fn bench_batched_forward() -> BatchedForwardBench {
    const K: usize = 32;
    let cfg = GcnConfig { input_dim: 8, hidden: 32, layers: 3, num_classes: 2 };
    let model = GcnModel::new(cfg, &mut ChaCha8Rng::seed_from_u64(21));
    let graphs: Vec<Graph> = (0..K).map(|i| ring_graph(6 + i % 4, 8)).collect();
    let views: Vec<GraphRef> = graphs.iter().map(|g| g.view()).collect();
    // shared operators: both arms skip adjacency construction, so the race
    // measures execution shape only
    let adjs: Vec<std::sync::Arc<NormAdj>> = graphs
        .iter()
        .map(|g| std::sync::Arc::new(NormAdj::with_aggregation(g, model.aggregation())))
        .collect();

    let per_graph = || -> Vec<usize> {
        views
            .iter()
            .zip(&adjs)
            .map(|(v, adj)| model.forward_with_adj(v, std::sync::Arc::clone(adj)).label())
            .collect()
    };
    // the packed layout is operator construction too (feature copy +
    // block-diagonal concatenation) — prebuilt like the per-graph arm's
    // adjacency operators, so the race is execution shape vs execution shape
    let batch = GraphBatch::pack_with_operators(&views, &adjs, model.config().input_dim);
    let batched = || -> Vec<usize> { model.forward_batch(&batch).labels() };
    let identical = per_graph() == batched();
    let (per_graph_secs, batched_secs) = race(
        25,
        || {
            black_box(per_graph());
        },
        || {
            black_box(batched());
        },
    );
    let avg_nodes = graphs.iter().map(|g| g.num_nodes() as f64).sum::<f64>() / graphs.len() as f64;
    BatchedForwardBench {
        graphs: K,
        avg_nodes,
        per_graph_secs,
        batched_secs,
        speedup: per_graph_secs / batched_secs,
        identical,
    }
}

fn bench_batched_train() -> BatchedTrainBench {
    const GRAPHS: usize = 48;
    const EPOCHS: usize = 4;
    const BATCH: usize = 16;
    let mut db = GraphDatabase::new(vec!["even".into(), "odd".into()]);
    for i in 0..GRAPHS {
        db.push(ring_graph(8 + i % 6, 8), i % 2);
    }
    let split = Split { train: (0..db.len()).collect(), val: vec![0, 1], test: vec![] };
    let gcfg = GcnConfig { input_dim: 8, hidden: 32, layers: 3, num_classes: 2 };
    let base = TrainOptions { epochs: EPOCHS, lr: 0.01, seed: 9, patience: 0, batch_size: 1 };
    let mini = TrainOptions { batch_size: BATCH, ..base };
    // warm-up: page in both code paths before timing
    black_box(train(&db, gcfg, &split, base));
    black_box(train(&db, gcfg, &split, mini));
    let (per_graph_secs, batched_secs) = race(
        7,
        || {
            black_box(train(&db, gcfg, &split, base));
        },
        || {
            black_box(train(&db, gcfg, &split, mini));
        },
    );
    BatchedTrainBench {
        graphs: GRAPHS,
        epochs: EPOCHS,
        batch_size: BATCH,
        per_graph_secs,
        batched_secs,
        speedup: per_graph_secs / batched_secs,
    }
}

/// Races one closure pair where each arm pins its kernel backend first:
/// the store is an atomic write, negligible against the kernels measured
/// here, and interleaving keeps drift from biasing either backend.
fn race_backends<F: FnMut(), G: FnMut()>(rounds: usize, mut scalar: F, mut simd: G) -> (f64, f64) {
    let out = race(
        rounds,
        || {
            backend::set_active(BackendKind::Scalar);
            scalar();
        },
        || {
            backend::set_active(BackendKind::Simd);
            simd();
        },
    );
    backend::refresh_from_env();
    out
}

fn bench_simd_matmul() -> BackendKernelBench {
    const N: usize = 256;
    let mut rng = ChaCha8Rng::seed_from_u64(29);
    let a = random_matrix(N, N, &mut rng);
    let b = random_matrix(N, N, &mut rng);
    // one output scratch per arm (reused across rounds, like the trainer)
    let mut out_s = Matrix::zeros(0, 0);
    let mut out_v = Matrix::zeros(0, 0);
    backend::set_active(BackendKind::Scalar);
    a.matmul_into(&b, &mut out_s);
    backend::set_active(BackendKind::Simd);
    a.matmul_into(&b, &mut out_v);
    let (scalar_secs, simd_secs) = race_backends(
        7,
        || {
            a.matmul_into(black_box(&b), &mut out_s);
            black_box(&out_s);
        },
        || {
            a.matmul_into(black_box(&b), &mut out_v);
            black_box(&out_v);
        },
    );
    BackendKernelBench {
        shape: format!("{N}x{N}x{N}"),
        backend_scalar_secs: scalar_secs,
        backend_simd_secs: simd_secs,
        speedup: scalar_secs / simd_secs,
    }
}

fn bench_simd_spmm() -> BackendKernelBench {
    // a training-shaped workload: 24 medium graphs packed into one
    // block-diagonal operator, propagated against hidden-width features
    const BLOCKS: usize = 24;
    const COLS: usize = 64;
    let graphs: Vec<Graph> = (0..BLOCKS).map(|i| ring_graph(60 + i % 9, 4)).collect();
    let adjs: Vec<NormAdj> = graphs.iter().map(NormAdj::new).collect();
    let block = NormAdj::block_diagonal(adjs.iter());
    let total = block.len();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let x = random_matrix(total, COLS, &mut rng);
    let mut out_s = Matrix::zeros(0, 0);
    let mut out_v = Matrix::zeros(0, 0);
    backend::set_active(BackendKind::Scalar);
    block.matmul_into(&x, &mut out_s);
    backend::set_active(BackendKind::Simd);
    block.matmul_into(&x, &mut out_v);
    let (scalar_secs, simd_secs) = race_backends(
        15,
        || {
            block.matmul_into(black_box(&x), &mut out_s);
            black_box(&out_s);
        },
        || {
            block.matmul_into(black_box(&x), &mut out_v);
            black_box(&out_v);
        },
    );
    BackendKernelBench {
        shape: format!("{BLOCKS} blocks, {total}x{COLS}"),
        backend_scalar_secs: scalar_secs,
        backend_simd_secs: simd_secs,
        speedup: scalar_secs / simd_secs,
    }
}

fn bench_simd_segmented() -> BackendKernelBench {
    // readout-shaped: many small segments over a cache-resident stacked
    // matrix. The allocation the public wrapper performs per call would
    // drown the kernel at this size, so the race goes through the static
    // backend handles with preallocated outputs, repeated enough times per
    // round to rise above timer noise.
    const ROWS: usize = 4096;
    const COLS: usize = 32;
    const REPS: usize = 40;
    let mut rng = ChaCha8Rng::seed_from_u64(37);
    let x = random_matrix(ROWS, COLS, &mut rng);
    let mut offsets = vec![0usize];
    while *offsets.last().expect("nonempty") < ROWS {
        let next = (offsets.last().expect("nonempty") + rng.gen_range(8..48)).min(ROWS);
        offsets.push(next);
    }
    let segments = offsets.len() - 1;
    let scalar = backend::backend(BackendKind::Scalar);
    let simd = backend::backend(BackendKind::Simd);
    let mut out_s = Matrix::zeros(segments, COLS);
    let mut out_v = Matrix::zeros(segments, COLS);
    scalar.segmented_col_sum(&x, &offsets, &mut out_s);
    simd.segmented_col_sum(&x, &offsets, &mut out_v);
    let (scalar_secs, simd_secs) = race(
        25,
        || {
            for _ in 0..REPS {
                scalar.segmented_col_sum(black_box(&x), &offsets, &mut out_s);
            }
            black_box(&out_s);
        },
        || {
            for _ in 0..REPS {
                simd.segmented_col_sum(black_box(&x), &offsets, &mut out_v);
            }
            black_box(&out_v);
        },
    );
    BackendKernelBench {
        shape: format!("{ROWS}x{COLS}, {segments} segments"),
        backend_scalar_secs: scalar_secs / REPS as f64,
        backend_simd_secs: simd_secs / REPS as f64,
        speedup: scalar_secs / simd_secs,
    }
}

/// One view's selections: its label plus each subgraph's
/// `(graph_index, node ids)`.
type ViewSignature = (usize, Vec<(usize, Vec<usize>)>);

/// The explain-view selections as comparable data.
fn selection_signature(set: &gvex_core::ExplanationViewSet) -> Vec<ViewSignature> {
    set.views
        .iter()
        .map(|v| (v.label, v.subgraphs.iter().map(|s| (s.graph_index, s.nodes.clone())).collect()))
        .collect()
}

fn bench_backend_parity() -> BackendParityBench {
    // same recipe as the end-to-end explain bench: a motif-vs-plain
    // database and a model trained to tell them apart (under the default
    // backend)
    let mut db = GraphDatabase::new(vec!["plain".into(), "motif".into()]);
    for i in 0..8 {
        db.push(plain_graph(6 + i % 3), 0);
        db.push(motif_graph(5 + i % 3), 1);
    }
    let split =
        Split { train: (0..db.len()).collect(), val: (0..db.len()).collect(), test: vec![] };
    let gcfg = GcnConfig { input_dim: 3, hidden: 8, layers: 2, num_classes: 2 };
    let opts = TrainOptions { epochs: 60, lr: 0.01, seed: 3, patience: 0, ..Default::default() };
    let (model, _) = train(&db, gcfg, &split, opts);
    let labels: Vec<usize> = vec![0, 1];
    let cfg = Configuration::uniform(0.05, 0.3, 0.5, 0, 4);
    let views: Vec<GraphRef> = db.graphs().iter().map(|g| g.view()).collect();
    let targets: Vec<usize> = db.truth().to_vec();

    let run = || {
        let explained = explain_database(&model, &db, &labels, &cfg, 1);
        let predicted = model.predict_batch(&views);
        let probas = model.predict_proba_batch(&views);
        let batch = GraphBatch::pack(&model, &views);
        let grads = model.backward_batch(&model.forward_batch(&batch), &targets);
        (selection_signature(&explained), predicted, probas, grads)
    };
    backend::set_active(BackendKind::Scalar);
    let (sel_s, lab_s, proba_s, grads_s) = run();
    backend::set_active(BackendKind::Simd);
    let (sel_v, lab_v, proba_v, grads_v) = run();
    backend::refresh_from_env();

    let max_proba_diff = proba_s
        .iter()
        .flatten()
        .zip(proba_v.iter().flatten())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let grad_pairs = grads_s.conv.iter().zip(&grads_v.conv).chain([(&grads_s.fc_w, &grads_v.fc_w)]);
    let max_grad_diff = grad_pairs
        .flat_map(|(a, b)| a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y).abs()))
        .fold(0.0f32, f32::max);
    BackendParityBench {
        graphs: db.len(),
        selections_identical: sel_s == sel_v,
        labels_identical: lab_s == lab_v,
        max_proba_diff,
        max_grad_diff,
    }
}

/// Builds the benchmark store at `path` and measures open/serve costs.
/// The file is left in place for [`bench_serve_qps`]; `main` removes it.
fn bench_store(path: &std::path::Path) -> (DbOpenBench, ServeFromDbBench) {
    let (kind, scale, seed, upper) = (DatasetKind::Mutagenicity, Scale::Small, 42u64, 4usize);

    // Cold start, one shot: everything a fresh process must redo when no
    // database file exists.
    let t = Instant::now();
    let (prep, views_mem) = harness::prepare_with_views(kind, scale, seed, upper);
    let cold_secs = t.elapsed().as_secs_f64();

    let file_bytes = harness::write_store_file(&prep, &views_mem, seed, upper, path);

    // In-memory reference outputs for the parity check.
    let refs: Vec<GraphRef> = prep.db.graphs().iter().map(|g| g.view()).collect();
    let labels_mem = prep.model.predict_batch(&refs);
    let sel_mem = selection_signature(&views_mem);

    // Warm serve: open the container, parse the stored views, classify the
    // whole database zero-copy off the mapped columns.
    let serve = || {
        let store = Store::open(path).expect("reopen benchmark store");
        let views = gvex_core::ExplanationViewSet::from_json(
            store.views_json().expect("benchmark store embeds views"),
        )
        .expect("stored views decode");
        let model = store.model();
        let refs: Vec<GraphRef> =
            (0..store.num_graphs()).map(|i| GraphRef::from(store.graph(i))).collect();
        let labels = model.predict_batch(&refs);
        (selection_signature(&views), labels)
    };
    let mut warm_secs = f64::INFINITY;
    let mut served = None;
    for _ in 0..5 {
        let t = Instant::now();
        let out = serve();
        warm_secs = warm_secs.min(t.elapsed().as_secs_f64());
        served = Some(out);
    }
    let (sel_store, labels_store) = served.expect("serve ran");

    // The harness-level warm path (owned copies) must agree as well.
    let (prep2, views2) = harness::prepare_from_store(path);
    let refs2: Vec<GraphRef> = prep2.db.graphs().iter().map(|g| g.view()).collect();
    let owned_identical = views2.map(|v| selection_signature(&v) == sel_mem).unwrap_or(false)
        && prep2.model.predict_batch(&refs2) == labels_mem;
    let identical = sel_store == sel_mem && labels_store == labels_mem && owned_identical;

    // Bare open, min-of-N.
    let probe = Store::open(path).expect("reopen benchmark store");
    let sections = probe.sections().len();
    let mapping = probe.mapping_kind().to_string();
    let mapped = probe.mapped_len();
    drop(probe);
    let mut open_secs = f64::INFINITY;
    for _ in 0..9 {
        let t = Instant::now();
        black_box(Store::open(path).expect("reopen benchmark store"));
        open_secs = open_secs.min(t.elapsed().as_secs_f64());
    }

    (
        DbOpenBench {
            file_bytes,
            sections,
            mapping,
            open_secs,
            mapped_mb_per_s: mapped as f64 / 1e6 / open_secs.max(1e-9),
        },
        ServeFromDbBench {
            graphs: prep.db.len(),
            cold_secs,
            warm_secs,
            speedup: cold_secs / warm_secs.max(1e-9),
            identical,
        },
    )
}

/// Zipfian(1) pick over `n` ranks: rank `i` drawn with weight `1/(i+1)`.
fn zipf_pick(rng: &mut ChaCha8Rng, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty rank table");
    let u = rng.gen_range(0.0..total);
    cumulative.partition_point(|&c| c <= u)
}

fn bench_serve_qps(path: &std::path::Path) -> ServeQpsBench {
    use gvex_serve::{answer, Client, Request, ServeState, Server, ServerConfig};

    const REQUESTS: usize = 240;
    const CLIENTS: usize = 4;
    const WORKERS: usize = 4;
    const COLD_REQUESTS: usize = 8;

    // Request templates ranked by popularity: explains first (hot), then
    // label queries, discriminative queries, and a tail of node requests.
    let probe = ServeState::open(path).expect("benchmark store opens");
    let classes = probe.db().num_classes();
    let mut templates: Vec<Request> = Vec::new();
    for l in 0..classes {
        templates.push(Request::explain(l, 4, false));
    }
    for l in 0..classes {
        templates.push(Request::query_label(l));
    }
    for l in 0..classes {
        templates.push(Request { discriminative: Some(l as u64), ..Request::query_label(l) });
    }
    for g in 0..probe.db().len().min(6) {
        templates.push(Request::node(g, 0, 4));
    }

    // Fixed Zipfian replay: every arm answers exactly this sequence.
    let mut cumulative = Vec::with_capacity(templates.len());
    let mut acc = 0.0;
    for i in 0..templates.len() {
        acc += 1.0 / (i + 1) as f64;
        cumulative.push(acc);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let schedule: Vec<usize> = (0..REQUESTS).map(|_| zipf_pick(&mut rng, &cumulative)).collect();

    // Sequential in-process ground truth (also warms nothing: fresh state).
    let expected: Vec<String> = {
        let state = ServeState::open(path).expect("benchmark store opens");
        templates
            .iter()
            .map(|r| {
                let resp = answer(&state, r);
                assert!(resp.ok, "sequential answer failed: {}", resp.error);
                resp.body
            })
            .collect()
    };

    // Warm arm: one daemon, CLIENTS concurrent connections replaying the
    // schedule round-robin, per-call latency recorded client-side.
    let state = ServeState::open(path).expect("benchmark store opens");
    let server = Server::bind(
        state,
        "127.0.0.1:0",
        ServerConfig { workers: WORKERS, ..ServerConfig::default() },
    )
    .expect("bind benchmark server");
    let addr = server.addr();
    let templates = std::sync::Arc::new(templates);
    let schedule = std::sync::Arc::new(schedule);
    let expected = std::sync::Arc::new(expected);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let templates = std::sync::Arc::clone(&templates);
            let schedule = std::sync::Arc::clone(&schedule);
            let expected = std::sync::Arc::clone(&expected);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut latencies_us = Vec::new();
                let mut identical = true;
                for i in (c..schedule.len()).step_by(CLIENTS) {
                    let at = schedule[i];
                    let t = Instant::now();
                    let resp = client.call(&templates[at]).expect("request answered");
                    latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
                    assert!(resp.ok, "warm request failed: {}", resp.error);
                    identical &= resp.body == expected[at];
                }
                (latencies_us, identical)
            })
        })
        .collect();
    let mut latencies_us = Vec::with_capacity(REQUESTS);
    let mut identical = true;
    for h in handles {
        let (lat, ok) = h.join().expect("client thread");
        latencies_us.extend(lat);
        identical &= ok;
    }
    let warm_secs = t0.elapsed().as_secs_f64();
    let cache = server.cache_stats();
    drop(server);
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies_us[((latencies_us.len() - 1) as f64 * p) as usize];

    // Cold arm: the same leading slice of the schedule, each request paying
    // a full state open (what serving without a daemon would cost).
    let t0 = Instant::now();
    for &at in schedule.iter().take(COLD_REQUESTS) {
        let state = ServeState::open(path).expect("benchmark store opens");
        let resp = answer(&state, &templates[at]);
        assert!(resp.ok, "cold request failed: {}", resp.error);
        identical &= resp.body == expected[at];
    }
    let cold_secs = t0.elapsed().as_secs_f64();

    // Mixed read/write arm: a fresh daemon over the same store, the same
    // CLIENTS readers replaying the schedule while a writer streams
    // localized mutations with per-batch commits. Bodies legitimately flip
    // when an epoch publishes mid-replay, so readers assert `ok` rather
    // than byte equality; what this arm measures is read latency while the
    // ingest engine patches views and swaps states underneath.
    const MIXED_MUTATIONS: usize = 12;
    const MIXED_BATCH: usize = 3;
    let state = ServeState::open(path).expect("benchmark store opens");
    let muts = gvex_ingest::generate(state.db(), MIXED_MUTATIONS, 11, GenProfile::Localized);
    let server = Server::bind(
        state,
        "127.0.0.1:0",
        ServerConfig { workers: WORKERS, ..ServerConfig::default() },
    )
    .expect("bind mixed benchmark server");
    let addr = server.addr();
    let t0 = Instant::now();
    let writer = {
        let muts = muts.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("writer connects");
            for chunk in muts.chunks(MIXED_BATCH) {
                let jsonl = gvex_ingest::to_jsonl(chunk);
                let req = Request { upper: Some(4), ..Request::mutate(&jsonl, true) };
                let resp = client.call(&req).expect("mutate answered");
                assert!(resp.ok, "mixed-arm mutate failed: {}", resp.error);
            }
        })
    };
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let templates = std::sync::Arc::clone(&templates);
            let schedule = std::sync::Arc::clone(&schedule);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("client connects");
                let mut latencies_us = Vec::new();
                for i in (c..schedule.len()).step_by(CLIENTS) {
                    let t = Instant::now();
                    let resp = client.call(&templates[schedule[i]]).expect("request answered");
                    latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
                    assert!(resp.ok, "mixed-arm read failed: {}", resp.error);
                }
                latencies_us
            })
        })
        .collect();
    let mut mixed_us = Vec::with_capacity(REQUESTS);
    for h in handles {
        mixed_us.extend(h.join().expect("mixed reader thread"));
    }
    writer.join().expect("mixed writer thread");
    let mixed_secs = t0.elapsed().as_secs_f64();
    let mixed_epochs = server.generation();
    drop(server);
    mixed_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mpct = |p: f64| mixed_us[((mixed_us.len() - 1) as f64 * p) as usize];

    let warm_qps = REQUESTS as f64 / warm_secs.max(1e-9);
    let cold_qps = COLD_REQUESTS as f64 / cold_secs.max(1e-9);
    ServeQpsBench {
        requests: REQUESTS,
        clients: CLIENTS,
        workers: WORKERS,
        warm_qps,
        warm_p50_us: pct(0.50),
        warm_p99_us: pct(0.99),
        cold_requests: COLD_REQUESTS,
        cold_qps,
        speedup: warm_qps / cold_qps.max(1e-9),
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        identical,
        mixed_requests: REQUESTS,
        mixed_mutations: MIXED_MUTATIONS,
        mixed_epochs,
        mixed_qps: REQUESTS as f64 / mixed_secs.max(1e-9),
        mixed_p50_us: mpct(0.50),
        mixed_p99_us: mpct(0.99),
    }
}

/// Incremental view maintenance vs full recompute over a localized
/// mutation stream against the benchmark store. The incremental arm folds
/// every mutation into the live views through `IngestEngine::apply`
/// (publishing an epoch every 8); the recompute arm pays a full
/// `rebuild_views` per update — what serving fresh views without IncPGen /
/// IncPMatch would cost. Ends with the differential pin: the incremental
/// end state must be equivalent to a from-scratch rebuild.
fn bench_ingest(path: &std::path::Path) -> IngestBench {
    use gvex_ingest::{check_equivalent, rebuild_views, IngestEngine};

    const MUTATIONS: usize = 48;
    const FULL_UPDATES: usize = 3;
    const EPOCH_INTERVAL: usize = 8;

    let store = Store::open(path).expect("benchmark store opens");
    let db = store.database();
    let model = store.model();
    let views = gvex_core::ExplanationViewSet::from_json(
        store.views_json().expect("benchmark store embeds views"),
    )
    .expect("stored views decode");
    let cfg = harness::gvex_config(4);
    let muts = gvex_ingest::generate(&db, MUTATIONS, 5, GenProfile::Localized);
    let ops: Vec<_> = muts.iter().map(|m| m.parse().expect("generated mutations parse")).collect();

    // Incremental arm: per-mutation refresh latency + end-to-end stream.
    let mut engine = IngestEngine::new(
        &store.meta().dataset,
        store.meta().seed,
        db.clone(),
        model.clone(),
        cfg.clone(),
        views.clone(),
        0,
    )
    .expect("engine boots from store content");
    let mut refresh_us = Vec::with_capacity(ops.len());
    let t0 = Instant::now();
    for op in &ops {
        let t = Instant::now();
        engine.apply(op).expect("generated mutation applies");
        refresh_us.push(t.elapsed().as_secs_f64() * 1e6);
        if engine.pending() >= EPOCH_INTERVAL {
            black_box(engine.publish_epoch());
        }
    }
    if engine.pending() > 0 {
        black_box(engine.publish_epoch());
    }
    let incremental_secs = t0.elapsed().as_secs_f64();
    refresh_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| refresh_us[((refresh_us.len() - 1) as f64 * p) as usize];

    // Recompute arm: the same leading updates, each paying a full re-mine
    // of every class's views on the evolved database.
    let mut scratch = IngestEngine::new(
        &store.meta().dataset,
        store.meta().seed,
        db.clone(),
        model.clone(),
        cfg.clone(),
        views.clone(),
        0,
    )
    .expect("engine boots from store content");
    let t0 = Instant::now();
    for op in ops.iter().take(FULL_UPDATES) {
        scratch.apply(op).expect("generated mutation applies");
        black_box(rebuild_views(scratch.model(), scratch.db(), scratch.cfg(), 1));
    }
    let full_secs = t0.elapsed().as_secs_f64();

    // Differential pin: incremental end state ≡ from-scratch rebuild.
    let full = rebuild_views(engine.model(), engine.db(), engine.cfg(), 1);
    let eq = check_equivalent(&engine.views_set(), &full, engine.cfg());
    if !eq.ok {
        eprintln!("[hotpaths]   ingest differential FAILED: {}", eq.detail);
    }

    let stats = engine.stats();
    let incremental_updates_per_s = MUTATIONS as f64 / incremental_secs.max(1e-9);
    let full_updates_per_s = FULL_UPDATES as f64 / full_secs.max(1e-9);
    IngestBench {
        graphs: engine.db().len(),
        mutations: MUTATIONS,
        epochs: stats.epochs_published,
        views_patched: stats.views_patched,
        incremental_secs,
        incremental_updates_per_s,
        refresh_p50_us: pct(0.50),
        refresh_p99_us: pct(0.99),
        full_updates: FULL_UPDATES,
        full_secs,
        full_updates_per_s,
        speedup: incremental_updates_per_s / full_updates_per_s.max(1e-9),
        differential_ok: eq.ok,
    }
}

fn main() {
    eprintln!("[hotpaths] matmul 256^3 ...");
    let matmul = bench_matmul();
    eprintln!(
        "[hotpaths]   reference {:.1} GFLOP/s, tiled {:.1} GFLOP/s, speedup {:.2}x {}",
        matmul.reference_gflops,
        matmul.tiled_gflops,
        matmul.speedup,
        if matmul.speedup >= 3.0 { "(>= 3x target met)" } else { "(BELOW 3x target)" }
    );

    eprintln!("[hotpaths] realized Jacobian, 128-node graph ...");
    let jac = bench_jacobian();
    eprintln!(
        "[hotpaths]   reference {:.0} seeds/s, batched {:.0} seeds/s, speedup {:.2}x {}",
        jac.reference_seeds_per_s,
        jac.batched_seeds_per_s,
        jac.speedup,
        if jac.speedup >= 2.0 { "(>= 2x target met)" } else { "(BELOW 2x target)" }
    );

    eprintln!("[hotpaths] disabled-observability overhead ...");
    let obs = bench_obs_overhead();
    eprintln!(
        "[hotpaths]   ratio {:.4} (baseline {:.4}s vs instrumented {:.4}s), \
         disabled macro set {:.2} ns/op",
        obs.overhead_ratio, obs.baseline_secs, obs.instrumented_secs, obs.disabled_macro_set_ns
    );
    eprintln!(
        "[hotpaths]   obs on {:.4}s, obs on + trace ring {:.4}s, ratio {:.4} {}",
        obs.obs_on_secs,
        obs.obs_on_trace_secs,
        obs.trace_ring_ratio,
        if obs.trace_ring_ratio <= 2.0 { "(<= 2x gate met)" } else { "(ABOVE 2x gate)" }
    );

    eprintln!("[hotpaths] vf2 subgraph matching, 192-node target ...");
    let vf2 = bench_vf2();
    eprintln!(
        "[hotpaths]   {} embeddings: reference {:.4}s, bitset {:.4}s, speedup {:.2}x {}",
        vf2.embeddings,
        vf2.reference_secs,
        vf2.bitset_secs,
        vf2.speedup,
        if vf2.speedup >= 3.0 { "(>= 3x target met)" } else { "(BELOW 3x target)" }
    );

    eprintln!("[hotpaths] explain_database end-to-end ...");
    let (explain, explain_large) = bench_explain();
    eprintln!(
        "[hotpaths]   {} graphs: {:.2}s @1 thread, {:.2}s @4 threads, {:.2}s @4 threads+obs ({})",
        explain.graphs,
        explain.secs_1_thread,
        explain.secs_4_threads,
        explain.obs_secs_4_threads,
        if explain.obs_identical { "output identical" } else { "OUTPUT DIVERGED" }
    );
    eprintln!(
        "[hotpaths]   {} large graphs (avg {:.0} nodes): {:.2}s @1 thread, {:.2}s @4 threads ({})",
        explain_large.graphs,
        explain_large.avg_nodes,
        explain_large.secs_1_thread,
        explain_large.secs_4_threads,
        if explain_large.identical { "output identical" } else { "OUTPUT DIVERGED" }
    );

    eprintln!("[hotpaths] explain-session reuse ...");
    let session = bench_explain_session();
    eprintln!(
        "[hotpaths]   {} graphs x {} algorithms: per-call {:.3}s, session {:.3}s, \
         speedup {:.2}x {} ({})",
        session.graphs,
        session.algorithms,
        session.per_call_secs,
        session.session_secs,
        session.speedup,
        if session.speedup >= 1.5 { "(>= 1.5x target met)" } else { "(BELOW 1.5x target)" },
        if session.identical { "selections identical" } else { "SELECTIONS DIVERGED" }
    );

    eprintln!("[hotpaths] batched block-diagonal forward ...");
    let batched_forward = bench_batched_forward();
    eprintln!(
        "[hotpaths]   {} graphs (avg {:.0} nodes): per-graph {:.5}s, batched {:.5}s, \
         speedup {:.2}x {} ({})",
        batched_forward.graphs,
        batched_forward.avg_nodes,
        batched_forward.per_graph_secs,
        batched_forward.batched_secs,
        batched_forward.speedup,
        if batched_forward.speedup >= 2.0 { "(>= 2x target met)" } else { "(BELOW 2x target)" },
        if batched_forward.identical { "labels identical" } else { "LABELS DIVERGED" }
    );

    eprintln!("[hotpaths] mini-batch training epochs ...");
    let batched_train = bench_batched_train();
    eprintln!(
        "[hotpaths]   {} graphs x {} epochs: batch 1 {:.4}s, batch {} {:.4}s, speedup {:.2}x {}",
        batched_train.graphs,
        batched_train.epochs,
        batched_train.per_graph_secs,
        batched_train.batch_size,
        batched_train.batched_secs,
        batched_train.speedup,
        if batched_train.speedup >= 1.5 { "(>= 1.5x target met)" } else { "(BELOW 1.5x target)" }
    );

    eprintln!("[hotpaths] backend race: dense matmul ...");
    let simd_matmul = bench_simd_matmul();
    eprintln!(
        "[hotpaths]   {}: scalar {:.4}s, simd {:.4}s, speedup {:.2}x {}",
        simd_matmul.shape,
        simd_matmul.backend_scalar_secs,
        simd_matmul.backend_simd_secs,
        simd_matmul.speedup,
        if simd_matmul.speedup >= 1.5 { "(>= 1.5x target met)" } else { "(BELOW 1.5x target)" }
    );

    eprintln!("[hotpaths] backend race: block-diagonal spmm ...");
    let simd_spmm = bench_simd_spmm();
    eprintln!(
        "[hotpaths]   {}: scalar {:.4}s, simd {:.4}s, speedup {:.2}x {}",
        simd_spmm.shape,
        simd_spmm.backend_scalar_secs,
        simd_spmm.backend_simd_secs,
        simd_spmm.speedup,
        if simd_spmm.speedup >= 1.5 { "(>= 1.5x target met)" } else { "(BELOW 1.5x target)" }
    );

    eprintln!("[hotpaths] backend race: segmented readout ...");
    let simd_segmented = bench_simd_segmented();
    eprintln!(
        "[hotpaths]   {}: scalar {:.4}s, simd {:.4}s, speedup {:.2}x {}",
        simd_segmented.shape,
        simd_segmented.backend_scalar_secs,
        simd_segmented.backend_simd_secs,
        simd_segmented.speedup,
        if simd_segmented.speedup >= 1.2 { "(>= 1.2x target met)" } else { "(BELOW 1.2x target)" }
    );

    eprintln!("[hotpaths] backend parity: explain + train under both backends ...");
    let backend_parity = bench_backend_parity();
    eprintln!(
        "[hotpaths]   {} graphs: selections {}, labels {}, \
         max proba diff {:.2e}, max grad diff {:.2e}",
        backend_parity.graphs,
        if backend_parity.selections_identical { "identical" } else { "DIVERGED" },
        if backend_parity.labels_identical { "identical" } else { "DIVERGED" },
        backend_parity.max_proba_diff,
        backend_parity.max_grad_diff
    );

    eprintln!("[hotpaths] store: cold start vs serve-from-db ...");
    let store_path =
        std::env::temp_dir().join(format!("gvex-hotpaths-{}.gvex", std::process::id()));
    let (db_open, serve_from_db) = bench_store(&store_path);
    eprintln!(
        "[hotpaths]   open {:.3} ms ({} bytes, {} sections via {}), {:.0} MB/s",
        db_open.open_secs * 1e3,
        db_open.file_bytes,
        db_open.sections,
        db_open.mapping,
        db_open.mapped_mb_per_s
    );
    eprintln!(
        "[hotpaths]   {} graphs: cold {:.2}s, warm {:.4}s, speedup {:.0}x {} ({})",
        serve_from_db.graphs,
        serve_from_db.cold_secs,
        serve_from_db.warm_secs,
        serve_from_db.speedup,
        if serve_from_db.speedup >= 10.0 { "(>= 10x target met)" } else { "(BELOW 10x target)" },
        if serve_from_db.identical { "output identical" } else { "OUTPUT DIVERGED" }
    );

    eprintln!("[hotpaths] serve: daemon QPS under Zipfian mix vs per-request cold start ...");
    let serve_qps = bench_serve_qps(&store_path);
    eprintln!(
        "[hotpaths]   {} reqs x {} clients @ {} workers: warm {:.0} qps \
         (p50 {:.0} us, p99 {:.0} us), cold {:.1} qps, speedup {:.0}x {} ({})",
        serve_qps.requests,
        serve_qps.clients,
        serve_qps.workers,
        serve_qps.warm_qps,
        serve_qps.warm_p50_us,
        serve_qps.warm_p99_us,
        serve_qps.cold_qps,
        serve_qps.speedup,
        if serve_qps.speedup >= 10.0 { "(>= 10x target met)" } else { "(BELOW 10x target)" },
        if serve_qps.identical { "bodies identical" } else { "BODIES DIVERGED" }
    );
    eprintln!(
        "[hotpaths]   mixed read/write: {:.0} qps (p50 {:.0} us, p99 {:.0} us) \
         under {} mutations / {} epochs",
        serve_qps.mixed_qps,
        serve_qps.mixed_p50_us,
        serve_qps.mixed_p99_us,
        serve_qps.mixed_mutations,
        serve_qps.mixed_epochs
    );

    eprintln!("[hotpaths] ingest: incremental view maintenance vs full recompute ...");
    let ingest = bench_ingest(&store_path);
    let _ = std::fs::remove_file(&store_path);
    eprintln!(
        "[hotpaths]   {} mutations: incremental {:.0} updates/s \
         (refresh p50 {:.0} us, p99 {:.0} us), full {:.2} updates/s, speedup {:.0}x {} ({})",
        ingest.mutations,
        ingest.incremental_updates_per_s,
        ingest.refresh_p50_us,
        ingest.refresh_p99_us,
        ingest.full_updates_per_s,
        ingest.speedup,
        if ingest.speedup >= 10.0 { "(>= 10x target met)" } else { "(BELOW 10x target)" },
        if ingest.differential_ok { "differential ok" } else { "DIFFERENTIAL FAILED" }
    );

    let report = Report {
        matmul_256: matmul,
        realized_jacobian_128: jac,
        obs_overhead: obs,
        vf2_match: vf2,
        explain_database: explain,
        explain_database_large: explain_large,
        explain_session: session,
        batched_forward,
        batched_train_epoch: batched_train,
        simd_matmul,
        simd_spmm,
        simd_segmented,
        backend_parity,
        db_open,
        serve_from_db,
        serve_qps,
        ingest,
    };
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_hotpaths.json");
    let text = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("[hotpaths] wrote {}", path.display());
}
