//! Figure 8 — conciseness analyses:
//!
//! * (a) sparsity per explainer/dataset (GVEX most concise; paper reports
//!   60–80% size reduction and gaps up to 0.2 vs GNNExplainer),
//! * (b) compression of the pattern tier over the subgraph tier (paper:
//!   > 95% of nodes compressed away),
//! * (c, d) edge loss of `Psum`'s patterns vs `u_l` on MUT and ENZ
//!   (paper's MUT series: {1.43%, 1.71%, 1.75%, 1.95%}, growing with `u_l`),
//!   including the ablation vs. a singleton-only cover.

use gvex_bench::harness::{fidelity_grid, gvex_config, prepare, write_json};
use gvex_core::{ApproxGvex, StreamGvex};
use gvex_datasets::{DatasetKind, Scale};
use gvex_metrics::{mean_compression, mean_edge_loss};
use gvex_mining::MiningConfig;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize, Default)]
struct Fig8 {
    sparsity: Vec<(String, String, f64)>, // (dataset, method, sparsity @ u=10)
    compression: Vec<(String, String, f64)>, // (dataset, algorithm, compression)
    edge_loss: Vec<(String, usize, f64, f64)>, // (dataset, u_l, greedy, singleton-only)
}

fn main() {
    let datasets = [
        DatasetKind::Mutagenicity,
        DatasetKind::Enzymes,
        DatasetKind::RedditBinary,
        DatasetKind::MalnetTiny,
    ];
    let uls = [5usize, 10, 15, 20];
    let mut out = Fig8::default();

    // (a) sparsity from the shared fidelity grid at u_l = 10
    let cells = fidelity_grid(&datasets, &uls, Scale::Bench, Duration::from_secs(120));
    println!("\nFigure 8(a) — Sparsity (u_l = 10, higher = more concise)\n");
    println!("{:<14} {:>7} {:>7} {:>7} {:>7}", "method", "MUT", "ENZ", "RED", "MAL");
    for method in
        ["ApproxGVEX", "StreamGVEX", "GNNExplainer", "SubgraphX", "GStarX", "GCFExplainer"]
    {
        let mut line = format!("{method:<14}");
        for ds in ["MUT", "ENZ", "RED", "MAL"] {
            match cells.iter().find(|c| c.dataset == ds && c.method == method && c.u_l == 10) {
                Some(c) if !c.timed_out => {
                    line.push_str(&format!(" {:>7.3}", c.quality.sparsity));
                    out.sparsity.push((ds.into(), method.into(), c.quality.sparsity));
                }
                _ => line.push_str("   T/O "),
            }
        }
        println!("{line}");
    }

    // (b) compression: generate full views per label with AG and SG
    println!("\nFigure 8(b) — Compression of patterns vs subgraphs\n");
    for kind in datasets {
        let prep = prepare(kind, Scale::Bench, 42);
        let labels: Vec<usize> = (0..prep.db.num_classes()).collect();
        let ag_views = ApproxGvex::new(gvex_config(10)).explain(&prep.model, &prep.db, &labels);
        let sg_views = StreamGvex::new(gvex_config(10)).explain(&prep.model, &prep.db, &labels);
        let cag = mean_compression(&ag_views.views);
        let csg = mean_compression(&sg_views.views);
        println!("{:<6} AG {cag:.3}  SG {csg:.3}", kind.short_name());
        out.compression.push((kind.short_name().into(), "ApproxGVEX".into(), cag));
        out.compression.push((kind.short_name().into(), "StreamGVEX".into(), csg));

        // (c, d) edge loss vs u_l — only for MUT and ENZ as in the paper
        if matches!(kind, DatasetKind::Mutagenicity | DatasetKind::Enzymes) {
            println!("\nFigure 8(c/d) — Edge loss vs u_l on {}:", kind.short_name());
            println!("{:>6} {:>10} {:>16}", "u_l", "greedy", "singleton-only");
            for &u in &uls {
                let views = ApproxGvex::new(gvex_config(u)).explain(&prep.model, &prep.db, &labels);
                let greedy = mean_edge_loss(&views.views);
                // ablation: cap patterns to single nodes — every edge is lost
                let mut single_cfg = gvex_config(u);
                single_cfg.mining = MiningConfig { max_pattern_nodes: 1, ..Default::default() };
                let single_views =
                    ApproxGvex::new(single_cfg).explain(&prep.model, &prep.db, &labels);
                let single = mean_edge_loss(&single_views.views);
                println!("{u:>6} {greedy:>10.4} {single:>16.4}");
                out.edge_loss.push((kind.short_name().into(), u, greedy, single));
            }
            println!();
        }
    }

    write_json("fig8_conciseness.json", &out);
}
