//! Case study 3 (Fig. 13, §A.9): explanation views for three ENZYMES
//! classes — different classes should yield visibly different subgraph
//! structures, and the recovered patterns should correlate with the planted
//! fold motifs.

use gvex_bench::harness::{format_pattern, gvex_config, prepare, write_json};
use gvex_core::ApproxGvex;
use gvex_datasets::proteins::class_motif;
use gvex_datasets::{DatasetKind, Scale};
use gvex_iso::{matches, MatchOptions};
use serde::Serialize;

#[derive(Serialize)]
struct ClassView {
    class: usize,
    class_name: String,
    num_subgraphs: usize,
    patterns: Vec<String>,
    motif_recovered: bool,
}

fn main() {
    let prep = prepare(DatasetKind::Enzymes, Scale::Bench, 42);
    eprintln!("classifier accuracy {:.3}", prep.accuracy);
    let ag = ApproxGvex::new(gvex_config(10));
    let opts = MatchOptions { induced: false, max_embeddings: 1000 };

    let mut out = Vec::new();
    println!("\nCase study 3 — ENZ explanation views for classes EC1..EC3\n");
    let set = ag.explain(&prep.model, &prep.db, &[0, 1, 2]);
    for view in &set.views {
        let motif = class_motif(view.label);
        // the planted motif is "recovered" when it matches inside some
        // explanation subgraph or some mined pattern contains it
        let in_subgraphs = view.subgraphs.iter().any(|s| matches(&motif, &s.subgraph, opts));
        let in_patterns = view.patterns.iter().any(|p| matches(&motif, p, opts));
        let recovered = in_subgraphs || in_patterns;
        println!(
            "class {} ({}): {} subgraphs, {} patterns, planted motif {}",
            view.label,
            prep.db.class_names[view.label],
            view.subgraphs.len(),
            view.patterns.len(),
            if recovered { "RECOVERED" } else { "missed" },
        );
        let patterns: Vec<String> =
            view.patterns.iter().map(|p| format_pattern(p, &prep.db.node_types)).collect();
        for (i, p) in patterns.iter().enumerate() {
            println!("  P{i}: {p}");
        }
        out.push(ClassView {
            class: view.label,
            class_name: prep.db.class_names[view.label].clone(),
            num_subgraphs: view.subgraphs.len(),
            patterns,
            motif_recovered: recovered,
        });
        println!();
    }
    write_json("case_enzymes.json", &out);
}
