//! Shared experiment harness for the figure/table binaries (see DESIGN.md §4
//! for the experiment index and `src/bin/` for the per-figure entry points).

pub mod harness;
