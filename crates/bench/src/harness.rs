//! Dataset preparation, explainer roster, fidelity grids, and result
//! persistence shared by every experiment binary.

use gvex_baselines::{GStarX, GcfExplainer, GnnExplainer, SubgraphX};
use gvex_core::{
    explain_database, ApproxGvex, Configuration, Explainer, ExplanationViewSet, NodeExplanation,
    StreamGvex,
};
use gvex_datasets::{DatasetKind, Scale};
use gvex_gnn::{
    train,
    trainer::{accuracy, TrainOptions},
    GcnConfig, GcnModel, Split,
};
use gvex_graph::GraphDatabase;
use gvex_metrics::{evaluate, ExplanationQuality};
use gvex_store::{write_store, BuildInput, Store};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// A dataset with its trained classifier, ready for explanation runs.
pub struct Prepared {
    /// Which dataset this is.
    pub kind: DatasetKind,
    /// The generated database.
    pub db: GraphDatabase,
    /// The trained GCN.
    pub model: GcnModel,
    /// Train/val/test split (explanations run on `split.test`, §6.1).
    pub split: Split,
    /// Classifier accuracy over the whole database.
    pub accuracy: f32,
}

/// Per-dataset training hyperparameters that reach high accuracy on the
/// synthetic stand-ins (validated by `tests/train_all_datasets.rs`).
fn train_options(kind: DatasetKind) -> (TrainOptions, usize) {
    let (epochs, lr, hidden) = match kind {
        DatasetKind::Synthetic => (300, 0.005, 16),
        DatasetKind::Enzymes => (200, 0.01, 16),
        DatasetKind::Products => (150, 0.01, 16),
        DatasetKind::MalnetTiny => (150, 0.01, 16),
        _ => (150, 0.01, 16),
    };
    (TrainOptions { epochs, lr, seed: 42, patience: 0, ..Default::default() }, hidden)
}

/// Generates `kind` at `scale` and trains the classifier.
pub fn prepare(kind: DatasetKind, scale: Scale, seed: u64) -> Prepared {
    gvex_obs::span!("bench.prepare");
    let db = kind.generate(scale, seed);
    let split = Split::paper(&db, seed);
    let (opts, hidden) = train_options(kind);
    let cfg = GcnConfig {
        input_dim: db.feature_dim().max(1),
        hidden,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, _) = train(&db, cfg, &split, opts);
    let all: Vec<usize> = (0..db.len()).collect();
    let acc = accuracy(&model, &db, &all);
    Prepared { kind, db, model, split, accuracy: acc }
}

/// Everything a cold start must redo when no `.gvex` database exists:
/// generate the dataset, train the classifier, and mine the explanation
/// views for every class (single-threaded, the deterministic reference).
pub fn prepare_with_views(
    kind: DatasetKind,
    scale: Scale,
    seed: u64,
    upper: usize,
) -> (Prepared, ExplanationViewSet) {
    let prep = prepare(kind, scale, seed);
    let labels: Vec<usize> = (0..prep.db.num_classes()).collect();
    let views = explain_database(&prep.model, &prep.db, &labels, &gvex_config(upper), 1);
    (prep, views)
}

/// Packs a prepared dataset, its trained classifier, and mined views into a
/// `.gvex` store at `path`. Returns the file length in bytes.
pub fn write_store_file(
    prep: &Prepared,
    views: &ExplanationViewSet,
    seed: u64,
    upper: usize,
    path: &Path,
) -> u64 {
    let json = views.to_json();
    let input = BuildInput {
        db: &prep.db,
        model: &prep.model,
        views_json: Some(&json),
        dataset: prep.kind.short_name(),
        seed,
        mining: Some(gvex_config(upper).mining),
        epoch: 0,
    };
    write_store(path, &input).unwrap_or_else(|e| panic!("write store {}: {e}", path.display()))
}

/// Warm start: reopens a `.gvex` store and rebuilds a [`Prepared`] (owned
/// database, deserialized model, split re-derived from the stored seed)
/// plus the stored view set. The owned copies make the result a drop-in
/// replacement for [`prepare`]; benches that want the zero-copy serve path
/// should hold the [`Store`] itself instead.
pub fn prepare_from_store(path: &Path) -> (Prepared, Option<ExplanationViewSet>) {
    gvex_obs::span!("bench.prepare_from_store");
    let store = Store::open(path).unwrap_or_else(|e| panic!("open store {}: {e}", path.display()));
    let kind = DatasetKind::from_short_name(&store.meta().dataset)
        .unwrap_or_else(|| panic!("unknown dataset {:?} in store", store.meta().dataset));
    let seed = store.meta().seed;
    let db = store.database();
    let model = store.model();
    let views =
        store.views_json().map(|s| ExplanationViewSet::from_json(s).expect("stored views decode"));
    let split = Split::paper(&db, seed);
    let all: Vec<usize> = (0..db.len()).collect();
    let acc = accuracy(&model, &db, &all);
    (Prepared { kind, db, model, split, accuracy: acc }, views)
}

/// The GVEX configuration used across experiments: the paper's MUT optimum
/// `(θ, r) = (0.08, 0.25)`, `γ = 0.5` (§6.2) with bound `[0, upper]`.
pub fn gvex_config(upper: usize) -> Configuration {
    Configuration::paper_mut(upper)
}

/// The six compared methods, in the paper's order: AG, SG, GE, SX, GX, GCF —
/// each at its reference implementation's default search budget.
pub fn roster(upper: usize) -> Vec<Box<dyn Explainer>> {
    vec![
        Box::new(ApproxGvex::new(gvex_config(upper))),
        Box::new(StreamGvex::new(gvex_config(upper))),
        Box::new(GnnExplainer::default()),
        Box::new(SubgraphX::default()),
        Box::new(GStarX::default()),
        Box::new(GcfExplainer::default()),
    ]
}

/// One cell of the fidelity grid.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GridCell {
    /// Dataset abbreviation (MUT, ENZ, …).
    pub dataset: String,
    /// Explainer name.
    pub method: String,
    /// Upper coverage bound `u_l` (the explanation-size knob).
    pub u_l: usize,
    /// Aggregated quality over the test split.
    pub quality: ExplanationQuality,
    /// Wall-clock seconds for the whole test split.
    pub seconds: f64,
    /// Whether the method exceeded its per-dataset budget (the paper's
    /// "> 24 hours" marker, scaled down).
    pub timed_out: bool,
}

/// Evaluates one explainer over the test split at one budget.
pub fn eval_method(prep: &Prepared, ex: &dyn Explainer, u_l: usize, budget: Duration) -> GridCell {
    gvex_obs::span!("bench.eval_method");
    let start = Instant::now();
    let mut pairs: Vec<(&gvex_graph::Graph, NodeExplanation)> = Vec::new();
    let mut timed_out = false;
    for &gi in &prep.split.test {
        if start.elapsed() > budget {
            timed_out = true;
            break;
        }
        let g = prep.db.graph(gi);
        if g.num_nodes() == 0 {
            continue;
        }
        pairs.push((g, ex.explain(&prep.model, g, u_l)));
    }
    let seconds = start.elapsed().as_secs_f64();
    let quality = evaluate(&prep.model, &pairs);
    GridCell {
        dataset: prep.kind.short_name().to_string(),
        method: ex.name().to_string(),
        u_l,
        quality,
        seconds,
        timed_out,
    }
}

/// The full fidelity grid of Figs. 5, 6, 8(a), 9(a–c): datasets × methods ×
/// `u_l` values. Expensive — cached on disk keyed by the scale.
pub fn fidelity_grid(
    datasets: &[DatasetKind],
    uls: &[usize],
    scale: Scale,
    budget: Duration,
) -> Vec<GridCell> {
    let cache = result_path(&format!("_cache_fidelity_grid_{scale:?}.json"));
    if let Ok(text) = std::fs::read_to_string(&cache) {
        if let Ok(cells) = serde_json::from_str::<Vec<GridCell>>(&text) {
            eprintln!("[harness] loaded cached grid from {}", cache.display());
            return cells;
        }
    }
    let mut cells = Vec::new();
    for &kind in datasets {
        eprintln!("[harness] preparing {} ...", kind.short_name());
        let prep = prepare(kind, scale, 42);
        eprintln!("[harness]   classifier accuracy {:.3}", prep.accuracy);
        for &u in uls {
            for ex in roster(u) {
                let cell = eval_method(&prep, ex.as_ref(), u, budget);
                eprintln!(
                    "[harness]   {} u_l={} F+={:.3} F-={:.3} sparsity={:.3} ({:.2}s{})",
                    cell.method,
                    u,
                    cell.quality.fidelity_plus,
                    cell.quality.fidelity_minus,
                    cell.quality.sparsity,
                    cell.seconds,
                    if cell.timed_out { ", TIMEOUT" } else { "" }
                );
                cells.push(cell);
            }
        }
    }
    write_json(&format!("_cache_fidelity_grid_{scale:?}.json"), &cells);
    cells
}

/// Workspace-level `results/` path for an artifact.
pub fn result_path(name: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let dir = root.join("results");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(name)
}

/// Serializes `value` to `results/<name>` as pretty JSON.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = result_path(name);
    let text = serde_json::to_string_pretty(value).expect("serializable result");
    std::fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprintln!("[harness] wrote {}", path.display());
}

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Human-readable one-line rendering of a pattern graph for case studies:
/// `"N-O, N-O"` style edge list (or a bare node-type list when edgeless).
pub fn format_pattern(p: &gvex_graph::Graph, reg: &gvex_graph::TypeRegistry) -> String {
    if p.num_edges() == 0 {
        return (0..p.num_nodes()).map(|v| reg.name(p.node_type(v))).collect::<Vec<_>>().join(", ");
    }
    p.edges()
        .map(|(u, v, _)| format!("{}-{}", reg.name(p.node_type(u)), reg.name(p.node_type(v))))
        .collect::<Vec<_>>()
        .join(", ")
}
