//! Criterion benchmarks of the end-to-end explanation algorithms: one
//! ApproxGVEX / StreamGVEX run per graph, and the baseline explainers at the
//! same node budget — the microscopic counterpart of Fig. 9(a,b).

use criterion::{criterion_group, criterion_main, Criterion};
use gvex_baselines::{GStarX, GcfExplainer, GnnExplainer, SubgraphX};
use gvex_core::{ApproxGvex, Configuration, Explainer, StreamGvex};
use gvex_datasets::{DatasetKind, Scale};
use gvex_gnn::{train, trainer::TrainOptions, GcnConfig, GcnModel, Split};
use gvex_graph::GraphDatabase;
use std::hint::black_box;

fn setup() -> (GraphDatabase, GcnModel, usize) {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 42);
    let split = Split::paper(&db, 42);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let opts = TrainOptions { epochs: 40, lr: 0.01, seed: 42, patience: 0, ..Default::default() };
    let (model, _) = train(&db, cfg, &split, opts);
    let gi = split.test[0];
    (db, model, gi)
}

fn bench_explainers(c: &mut Criterion) {
    let (db, model, gi) = setup();
    let g = db.graph(gi);
    let cfg = Configuration::paper_mut(8);

    let mut group = c.benchmark_group("explain_one_graph");
    group.sample_size(10);
    let methods: Vec<Box<dyn Explainer>> = vec![
        Box::new(ApproxGvex::new(cfg.clone())),
        Box::new(StreamGvex::new(cfg)),
        Box::new(GnnExplainer { epochs: 30, ..Default::default() }),
        Box::new(SubgraphX { iterations: 15, shapley_samples: 5, ..Default::default() }),
        Box::new(GStarX { samples_per_node: 8, ..Default::default() }),
        Box::new(GcfExplainer::default()),
    ];
    for ex in &methods {
        group.bench_function(ex.name(), |b| b.iter(|| black_box(ex.explain(&model, g, 8))));
    }
    group.finish();
}

criterion_group!(benches, bench_explainers);
criterion_main!(benches);
