//! Criterion micro-benchmarks for GVEX's primitive operators — the cost
//! model terms of Theorem 4.1 (`EVerify` inference, Jacobian precompute,
//! `PMatch` isomorphism, `PGen` mining, `Psum` cover) plus the per-arrival
//! cost of the streaming algorithm, and the DESIGN.md §5 ablation of
//! influence estimation modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvex_core::psum::psum;
use gvex_core::stream::GraphStream;
use gvex_core::Configuration;
use gvex_datasets::{DatasetKind, Scale};
use gvex_gnn::{train, trainer::TrainOptions, GcnConfig, GcnModel, Split};
use gvex_graph::{Graph, GraphDatabase};
use gvex_influence::{influence_matrix, InfluenceAnalysis, InfluenceMode};
use gvex_iso::{enumerate, MatchOptions};
use gvex_mining::{pgen, MiningConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn setup() -> (GraphDatabase, GcnModel) {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 42);
    let split = Split::paper(&db, 42);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let opts = TrainOptions { epochs: 40, lr: 0.01, seed: 42, patience: 0, ..Default::default() };
    let (model, _) = train(&db, cfg, &split, opts);
    (db, model)
}

fn bench_inference(c: &mut Criterion) {
    let (db, model) = setup();
    let g = db.graph(0);
    c.bench_function("everify_inference", |b| b.iter(|| black_box(model.predict(black_box(g)))));
}

fn bench_influence_modes(c: &mut Criterion) {
    let (db, model) = setup();
    let g = db.graph(0);
    let mut group = c.benchmark_group("influence_matrix");
    for (name, mode) in [
        ("expected", InfluenceMode::Expected),
        ("realized", InfluenceMode::Realized),
        ("monte_carlo_64", InfluenceMode::MonteCarlo { walks: 64 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            let mut rng = ChaCha8Rng::seed_from_u64(0);
            b.iter(|| black_box(influence_matrix(&model, g, mode, &mut rng)))
        });
    }
    group.finish();
}

fn bench_analysis_build(c: &mut Criterion) {
    let (db, model) = setup();
    let g = db.graph(0);
    c.bench_function("influence_analysis_build", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        b.iter(|| {
            black_box(InfluenceAnalysis::new(
                &model,
                g,
                0.08,
                0.25,
                0.5,
                InfluenceMode::Expected,
                &mut rng,
            ))
        })
    });
}

fn bench_vf2(c: &mut Criterion) {
    // a 6-ring pattern inside a 60-node molecule-like target
    let (db, _) = setup();
    let target = db.graph(1);
    let mut b = Graph::builder(false);
    let ring: Vec<usize> = (0..6).map(|_| b.add_node(0, &[])).collect();
    for i in 0..6 {
        b.add_edge(ring[i], ring[(i + 1) % 6], 1);
    }
    let pattern = b.build();
    c.bench_function("vf2_enumerate_ring", |b| {
        b.iter(|| {
            black_box(enumerate(
                &pattern,
                target,
                MatchOptions { induced: true, max_embeddings: 1000 },
            ))
        })
    });
}

fn bench_pgen_and_psum(c: &mut Criterion) {
    let (db, model) = setup();
    // explanation-sized subgraphs: top-8 nodes of three molecules
    let subs: Vec<Graph> = (0..3)
        .map(|i| {
            let g = db.graph(i);
            let nodes: Vec<usize> = (0..g.num_nodes().min(8)).collect();
            g.induced_subgraph(&nodes).graph
        })
        .collect();
    let refs: Vec<&Graph> = subs.iter().collect();
    let mining = MiningConfig::default();
    c.bench_function("pgen_three_subgraphs", |b| b.iter(|| black_box(pgen(&refs, &mining))));
    c.bench_function("psum_three_subgraphs", |b| {
        b.iter(|| black_box(psum(&refs, &mining, MatchOptions::default())))
    });
    let _ = model;
}

fn bench_stream_arrival(c: &mut Criterion) {
    let (db, model) = setup();
    let g = db.graph(0);
    let cfg = Configuration::paper_mut(8);
    c.bench_function("stream_full_graph", |b| {
        b.iter(|| {
            let mut s = GraphStream::new(&model, g, 0, cfg.clone());
            for v in 0..g.num_nodes() {
                s.arrive(v);
            }
            black_box(s.current_score())
        })
    });
}

criterion_group!(
    benches,
    bench_inference,
    bench_influence_modes,
    bench_analysis_build,
    bench_vf2,
    bench_pgen_and_psum,
    bench_stream_arrival
);
criterion_main!(benches);
