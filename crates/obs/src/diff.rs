//! Comparing two `OBS_report.json` files: the perf-regression gate behind
//! `gvex obs diff`.
//!
//! The reader is hand-rolled (like the writer in [`crate::report`] —
//! `gvex-obs` sits below the serde stand-ins and stays dependency-free) and
//! **backward-compatible**: it accepts both schema v1 reports (no
//! percentiles, no requests) and v2, so a freshly built binary can gate
//! against a baseline committed before the schema bump.
//!
//! Comparison is asymmetric by design — it looks for *regressions* in `new`
//! relative to `old`:
//!
//! * **span totals** — `new.total_ms > old.total_ms × (1 + span_pct/100)`,
//!   skipping spans whose old total is below `min_span_ms` (noise floor)
//!   and spans present in only one report (a renamed span is not a
//!   slowdown);
//! * **counters** — same ratio test with `counter_pct`, skipping counters
//!   whose old value is below `min_counter` (a 1→3 jitter is not a
//!   regression);
//! * **p99 latency** — same ratio test with `p99_pct`, only where both
//!   reports carry percentiles (v2) and the span passes the noise floor.
//!
//! Thresholds are percentages of allowed growth: `span_pct = 50` tolerates
//! up to 1.5× the old total. CI uses deliberately generous values — the
//! gate exists to catch *gross* regressions, not machine jitter.

use std::collections::BTreeMap;
use std::fmt;

/// Allowed growth before a metric counts as regressed. See module docs.
#[derive(Clone, Copy, Debug)]
pub struct Thresholds {
    /// Max span total_ms growth, percent (50 ⇒ 1.5× allowed).
    pub span_pct: f64,
    /// Max counter growth, percent.
    pub counter_pct: f64,
    /// Max span p99 growth, percent.
    pub p99_pct: f64,
    /// Spans with an old total below this (ms) are never compared.
    pub min_span_ms: f64,
    /// Counters with an old value below this are never compared.
    pub min_counter: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            span_pct: 50.0,
            counter_pct: 50.0,
            p99_pct: 100.0,
            min_span_ms: 1.0,
            min_counter: 100,
        }
    }
}

/// What regressed and by how much.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// `"span"`, `"counter"`, or `"p99"`.
    pub kind: &'static str,
    /// Span path or counter name.
    pub name: String,
    /// Old value (ms for spans/p99, count for counters).
    pub old: f64,
    /// New value.
    pub new: f64,
    /// The limit that was breached, as a ratio (e.g. 1.5).
    pub limit: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {:<44} {:>12.3} -> {:>12.3}  ({:.2}x, limit {:.2}x)",
            self.kind,
            self.name,
            self.old,
            self.new,
            if self.old > 0.0 { self.new / self.old } else { f64::INFINITY },
            self.limit
        )
    }
}

/// One span row as read from a report (v1 fields always present, v2
/// percentile fields optional).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEntry {
    /// Completed guards.
    pub count: u64,
    /// Total wall-clock, milliseconds.
    pub total_ms: f64,
    /// p50 (v2 reports only).
    pub p50_ms: Option<f64>,
    /// p99 (v2 reports only).
    pub p99_ms: Option<f64>,
}

/// The slice of a report the diff needs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ReportData {
    /// `schema_version` field.
    pub schema_version: u64,
    /// Spans keyed by path.
    pub spans: BTreeMap<String, SpanEntry>,
    /// Counters keyed by name.
    pub counters: BTreeMap<String, u64>,
}

/// Parses an `OBS_report.json` document (schema v1 or v2).
pub fn parse_report(text: &str) -> Result<ReportData, String> {
    let value = json::parse(text)?;
    let obj = value.as_obj().ok_or("report root is not an object")?;
    let mut data = ReportData {
        schema_version: get(obj, "schema_version")
            .and_then(Value::as_u64)
            .ok_or("missing schema_version")?,
        ..ReportData::default()
    };
    let spans = get(obj, "spans").and_then(Value::as_arr).ok_or("missing spans array")?;
    for span in spans {
        let s = span.as_obj().ok_or("span entry is not an object")?;
        let path = get(s, "path").and_then(Value::as_str).ok_or("span without path")?;
        data.spans.insert(
            path.to_string(),
            SpanEntry {
                count: get(s, "count").and_then(Value::as_u64).unwrap_or(0),
                total_ms: get(s, "total_ms").and_then(Value::as_f64).unwrap_or(0.0),
                p50_ms: get(s, "p50_ms").and_then(Value::as_f64),
                p99_ms: get(s, "p99_ms").and_then(Value::as_f64),
            },
        );
    }
    let counters = get(obj, "counters").and_then(Value::as_obj).ok_or("missing counters object")?;
    for (name, v) in counters {
        data.counters.insert(name.clone(), v.as_u64().unwrap_or(0));
    }
    Ok(data)
}

/// All regressions of `new` against `old` under `thr`, sorted worst-first
/// within each kind (spans, then p99, then counters).
pub fn compare(old: &ReportData, new: &ReportData, thr: &Thresholds) -> Vec<Regression> {
    let mut out = Vec::new();
    for (path, o) in &old.spans {
        let Some(n) = new.spans.get(path) else { continue };
        if o.total_ms < thr.min_span_ms {
            continue;
        }
        let limit = 1.0 + thr.span_pct / 100.0;
        if n.total_ms > o.total_ms * limit {
            out.push(Regression {
                kind: "span",
                name: path.clone(),
                old: o.total_ms,
                new: n.total_ms,
                limit,
            });
        }
        if let (Some(op99), Some(np99)) = (o.p99_ms, n.p99_ms) {
            let limit = 1.0 + thr.p99_pct / 100.0;
            if op99 > 0.0 && np99 > op99 * limit {
                out.push(Regression {
                    kind: "p99",
                    name: path.clone(),
                    old: op99,
                    new: np99,
                    limit,
                });
            }
        }
    }
    for (name, &o) in &old.counters {
        let Some(&n) = new.counters.get(name) else { continue };
        if o < thr.min_counter {
            continue;
        }
        let limit = 1.0 + thr.counter_pct / 100.0;
        if n as f64 > o as f64 * limit {
            out.push(Regression {
                kind: "counter",
                name: name.clone(),
                old: o as f64,
                new: n as f64,
                limit,
            });
        }
    }
    out.sort_by(|a, b| {
        let rank = |k: &str| match k {
            "span" => 0,
            "p99" => 1,
            _ => 2,
        };
        let ra = if a.old > 0.0 { a.new / a.old } else { f64::INFINITY };
        let rb = if b.old > 0.0 { b.new / b.old } else { f64::INFINITY };
        rank(a.kind).cmp(&rank(b.kind)).then(rb.total_cmp(&ra))
    });
    out
}

fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

pub(crate) use json::Value;

/// A minimal recursive-descent JSON reader, sized for gvex's own reports
/// (objects, arrays, strings with the escapes the writer emits, numbers,
/// booleans, null). Not a general-purpose validator.
mod json {
    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub(crate) enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number, as `f64`.
        Num(f64),
        /// A string literal, unescaped.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, in document order (duplicate keys keep the first).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub(crate) fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }
        pub(crate) fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 => Some(*n as u64),
                _ => None,
            }
        }
        pub(crate) fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub(crate) fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub(crate) fn as_obj(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    pub(crate) fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", c as char, self.i))
            }
        }

        fn eat_literal(&mut self, lit: &str) -> bool {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                true
            } else {
                false
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
                Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?} at byte {}", self.i)),
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(Value::Obj(out));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let val = self.value()?;
                out.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Value::Obj(out));
                    }
                    other => return Err(format!("expected , or }} got {other:?} at {}", self.i)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(Value::Arr(out));
            }
            loop {
                out.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Value::Arr(out));
                    }
                    other => return Err(format!("expected , or ] got {other:?} at {}", self.i)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                if self.i + 4 >= self.b.len() {
                                    return Err("truncated \\u escape".into());
                                }
                                let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                    .map_err(|_| "bad \\u escape")?;
                                let code =
                                    u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                self.i += 4;
                            }
                            other => return Err(format!("bad escape {other:?}")),
                        }
                        self.i += 1;
                    }
                    Some(_) => {
                        // consume one UTF-8 scalar; the cursor only ever
                        // stops on char boundaries, so the slice is valid
                        let c = std::str::from_utf8(&self.b[self.i..])
                            .map_err(|_| "invalid UTF-8 in string")?
                            .chars()
                            .next()
                            .expect("nonempty");
                        out.push(c);
                        self.i += c.len_utf8();
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.i;
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                    self.i += 1;
                } else {
                    break;
                }
            }
            let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| "bad number")?;
            s.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {s:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V1: &str = r#"{
      "schema_version": 1,
      "threads": 4,
      "open_spans": 0,
      "spans": [
        {"path": "explain_db", "count": 1, "total_ms": 120.5, "min_ms": 120.5, "max_ms": 120.5},
        {"path": "explain_db/predict", "count": 2, "total_ms": 30.0, "min_ms": 10.0, "max_ms": 20.0}
      ],
      "counters": {"gnn.trace_cache.hits": 500, "tiny": 2},
      "histograms": {}
    }"#;

    fn v2_with(total: f64, p99: f64, hits: u64) -> String {
        format!(
            r#"{{
              "schema_version": 2,
              "spans": [
                {{"path": "explain_db", "count": 1, "total_ms": {total}, "min_ms": 1.0,
                  "max_ms": 2.0, "p50_ms": 1.0, "p90_ms": 1.5, "p99_ms": {p99}, "p999_ms": {p99}}}
              ],
              "counters": {{"gnn.trace_cache.hits": {hits}, "tiny": 2}}
            }}"#
        )
    }

    #[test]
    fn reads_v1_reports_without_percentiles() {
        let r = parse_report(V1).unwrap();
        assert_eq!(r.schema_version, 1);
        assert_eq!(r.spans["explain_db"].total_ms, 120.5);
        assert_eq!(r.spans["explain_db"].p99_ms, None);
        assert_eq!(r.counters["gnn.trace_cache.hits"], 500);
    }

    #[test]
    fn reads_v2_percentiles() {
        let r = parse_report(&v2_with(100.0, 5.0, 500)).unwrap();
        assert_eq!(r.schema_version, 2);
        assert_eq!(r.spans["explain_db"].p99_ms, Some(5.0));
    }

    #[test]
    fn flags_span_counter_and_p99_regressions() {
        let old = parse_report(&v2_with(100.0, 5.0, 500)).unwrap();
        let new = parse_report(&v2_with(400.0, 25.0, 2000)).unwrap();
        let regs = compare(&old, &new, &Thresholds::default());
        let kinds: Vec<&str> = regs.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&"span"), "{regs:?}");
        assert!(kinds.contains(&"p99"), "{regs:?}");
        assert!(kinds.contains(&"counter"), "{regs:?}");
        // the 2->2 "tiny" counter sits under min_counter and never fires
        assert!(!regs.iter().any(|r| r.name == "tiny"));
    }

    #[test]
    fn within_threshold_passes_and_improvements_never_fire() {
        let old = parse_report(&v2_with(100.0, 5.0, 500)).unwrap();
        let same = compare(&old, &old, &Thresholds::default());
        assert!(same.is_empty(), "{same:?}");
        let better = parse_report(&v2_with(50.0, 2.0, 100)).unwrap();
        assert!(compare(&old, &better, &Thresholds::default()).is_empty());
    }

    #[test]
    fn v1_vs_v2_skips_percentiles_but_compares_totals() {
        let old = parse_report(V1).unwrap();
        let new = parse_report(&v2_with(500.0, 9.0, 200)).unwrap();
        let regs = compare(&old, &new, &Thresholds::default());
        assert!(regs.iter().any(|r| r.kind == "span" && r.name == "explain_db"));
        assert!(!regs.iter().any(|r| r.kind == "p99"), "v1 has no percentiles to compare");
        // hits shrank 500 -> 200: an improvement, not a regression
        assert!(!regs.iter().any(|r| r.kind == "counter"));
    }

    #[test]
    fn missing_entries_are_skipped() {
        let old = parse_report(V1).unwrap();
        let mut new = old.clone();
        new.spans.remove("explain_db");
        new.counters.remove("gnn.trace_cache.hits");
        assert!(compare(&old, &new, &Thresholds::default()).is_empty());
    }

    #[test]
    fn parser_handles_escapes_and_rejects_garbage() {
        let v = json::parse(r#"{"a\n": [1, -2.5e3, true, null, "x\"y"]}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "a\n");
        let arr = obj[0].1.as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[4].as_str(), Some("x\"y"));
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("{} trailing").is_err());
    }
}
