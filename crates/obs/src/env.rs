//! Validated environment-variable parsing, shared by every gvex crate.
//!
//! One place defines what `GVEX_THREADS=garbage` means (warn once, fall back
//! to the machine default — never abort a run over a typo) instead of each
//! crate hand-rolling its own `std::env::var` dance. This module is always
//! compiled, independent of the `enabled` feature.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Mutex;

/// A malformed environment variable: which one, what it held, and why it was
/// rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EnvError {
    /// Variable name, e.g. `GVEX_THREADS`.
    pub var: String,
    /// The offending value, verbatim.
    pub value: String,
    /// What a valid value looks like.
    pub expected: &'static str,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {}={:?}: expected {}", self.var, self.value, self.expected)
    }
}

impl std::error::Error for EnvError {}

/// The variable's value, with unset / empty / whitespace-only normalized to
/// `None`.
pub fn string(var: &str) -> Option<String> {
    std::env::var(var).ok().filter(|s| !s.trim().is_empty())
}

/// Parses an unsigned integer. Unset is `Ok(None)`; a malformed value is an
/// [`EnvError`] for the caller to surface or fall back from.
pub fn parse_usize(var: &str) -> Result<Option<usize>, EnvError> {
    match string(var) {
        None => Ok(None),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) => Ok(Some(n)),
            Err(_) => {
                Err(EnvError { var: var.to_string(), value: raw, expected: "an unsigned integer" })
            }
        },
    }
}

/// Parses a boolean toggle: `1`/`true`/`yes`/`on` (case-insensitive) are
/// true, `0`/`false`/`no`/`off` and unset are false. Anything else warns
/// once and reads as false, so a typo disables instrumentation rather than
/// corrupting a run.
pub fn flag(var: &str) -> bool {
    let Some(raw) = string(var) else { return false };
    match raw.trim().to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => true,
        "0" | "false" | "no" | "off" => false,
        _ => {
            let err = EnvError {
                var: var.to_string(),
                value: raw,
                expected: "1/0, true/false, yes/no, or on/off",
            };
            warn_once(var, &format!("{err}; treating as unset"));
            false
        }
    }
}

/// The worker count parallel code should use: a valid `GVEX_THREADS >= 1`
/// wins; anything malformed (including `0`) warns once and falls back to
/// [`default_parallelism`], so a bad value degrades to the machine default
/// instead of failing the run.
pub fn threads() -> usize {
    match parse_usize("GVEX_THREADS") {
        Ok(Some(n)) if n >= 1 => n,
        Ok(None) => default_parallelism(),
        Ok(Some(_)) => {
            warn_once(
                "GVEX_THREADS",
                "invalid GVEX_THREADS=\"0\": expected an integer >= 1; using available parallelism",
            );
            default_parallelism()
        }
        Err(err) => {
            warn_once("GVEX_THREADS", &format!("{err}; using available parallelism"));
            default_parallelism()
        }
    }
}

/// The machine's available parallelism (1 if unknown), snapshotted on
/// first use: `std::thread::available_parallelism` re-reads cgroup limits
/// on every call (microseconds each), and this sits on the dispatch path
/// of every parallel call and adaptive fan-out gate.
pub fn default_parallelism() -> usize {
    static CACHED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Default for [`par_threshold`]: roughly the scalar-operation count below
/// which spawning scoped worker threads costs more than it saves, measured
/// on the explain pipeline's fan-outs (see `BENCH_hotpaths.json`).
pub const DEFAULT_PAR_THRESHOLD: usize = 1 << 18;

/// The adaptive-parallelism cost threshold in estimated scalar operations:
/// gated fan-outs whose workload estimate falls below it run sequentially
/// on the calling thread; larger ones go parallel (given more than one
/// worker *and* more than one hardware thread — see
/// `rayon::should_fan_out`). `GVEX_PAR_THRESHOLD=0` removes the cost bar
/// entirely; a malformed value warns once and falls back to
/// [`DEFAULT_PAR_THRESHOLD`]. Both branches of every gate preserve input
/// order, so the setting never changes results — only thread-spawn
/// overhead.
pub fn par_threshold() -> usize {
    match parse_usize("GVEX_PAR_THRESHOLD") {
        Ok(Some(n)) => n,
        Ok(None) => DEFAULT_PAR_THRESHOLD,
        Err(err) => {
            warn_once("GVEX_PAR_THRESHOLD", &format!("{err}; using the default threshold"));
            DEFAULT_PAR_THRESHOLD
        }
    }
}

/// Parses an enumerated setting against a closed list of spellings,
/// returning the matching entry of `allowed` (comparison is trimmed and
/// case-insensitive, so `GVEX_BACKEND=Simd` selects `"simd"`). Unset reads
/// as `None`; an unrecognized value warns once and also reads as `None`, so
/// a typo falls back to the caller's default instead of failing the run.
pub fn choice(var: &str, allowed: &'static [&'static str]) -> Option<&'static str> {
    let raw = string(var)?;
    let lower = raw.trim().to_ascii_lowercase();
    match allowed.iter().find(|&&a| a == lower) {
        Some(&hit) => Some(hit),
        None => {
            warn_once(
                var,
                &format!(
                    "invalid {var}={raw:?}: expected one of {}; treating as unset",
                    allowed.join("/")
                ),
            );
            None
        }
    }
}

static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Prints `msg` to stderr the first time `var` misparses in this process;
/// repeated lookups (the thread-count query runs per parallel call) stay
/// silent.
fn warn_once(var: &str, msg: &str) {
    let mut warned = WARNED.lock().unwrap_or_else(|e| e.into_inner());
    if warned.insert(var.to_string()) {
        eprintln!("[gvex] {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test owns a unique variable name: tests in this binary run
    // concurrently and the process environment is shared.

    #[test]
    fn unset_and_empty_are_none() {
        assert_eq!(string("GVEX_OBS_TEST_UNSET"), None);
        std::env::set_var("GVEX_OBS_TEST_EMPTY", "  ");
        assert_eq!(string("GVEX_OBS_TEST_EMPTY"), None);
        assert_eq!(parse_usize("GVEX_OBS_TEST_EMPTY"), Ok(None));
    }

    #[test]
    fn parse_usize_accepts_and_rejects() {
        std::env::set_var("GVEX_OBS_TEST_USIZE_OK", " 12 ");
        assert_eq!(parse_usize("GVEX_OBS_TEST_USIZE_OK"), Ok(Some(12)));
        std::env::set_var("GVEX_OBS_TEST_USIZE_BAD", "garbage");
        let err = parse_usize("GVEX_OBS_TEST_USIZE_BAD").unwrap_err();
        assert_eq!(err.var, "GVEX_OBS_TEST_USIZE_BAD");
        assert_eq!(err.value, "garbage");
        assert!(err.to_string().contains("unsigned integer"), "{err}");
    }

    #[test]
    fn flag_spellings() {
        for (value, want) in
            [("1", true), ("TRUE", true), ("on", true), ("Yes", true), ("0", false), ("off", false)]
        {
            std::env::set_var("GVEX_OBS_TEST_FLAG", value);
            assert_eq!(flag("GVEX_OBS_TEST_FLAG"), want, "value {value:?}");
        }
        std::env::set_var("GVEX_OBS_TEST_FLAG_BAD", "maybe");
        assert!(!flag("GVEX_OBS_TEST_FLAG_BAD"));
    }

    #[test]
    fn choice_matches_case_insensitively_and_falls_back() {
        const ALLOWED: &[&str] = &["auto", "scalar", "simd"];
        std::env::set_var("GVEX_OBS_TEST_CHOICE", " Simd ");
        assert_eq!(choice("GVEX_OBS_TEST_CHOICE", ALLOWED), Some("simd"));
        std::env::set_var("GVEX_OBS_TEST_CHOICE_BAD", "avx9000");
        assert_eq!(choice("GVEX_OBS_TEST_CHOICE_BAD", ALLOWED), None);
        assert_eq!(choice("GVEX_OBS_TEST_CHOICE_UNSET", ALLOWED), None);
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }

    #[test]
    fn par_threshold_parses_and_falls_back() {
        std::env::set_var("GVEX_PAR_THRESHOLD", "4096");
        assert_eq!(par_threshold(), 4096);
        std::env::set_var("GVEX_PAR_THRESHOLD", "0");
        assert_eq!(par_threshold(), 0);
        std::env::set_var("GVEX_PAR_THRESHOLD", "not-a-number");
        assert_eq!(par_threshold(), DEFAULT_PAR_THRESHOLD);
        std::env::remove_var("GVEX_PAR_THRESHOLD");
        assert_eq!(par_threshold(), DEFAULT_PAR_THRESHOLD);
    }
}
