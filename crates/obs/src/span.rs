//! RAII wall-clock spans aggregated by slash-joined path.
//!
//! [`enter`] pushes a segment onto the calling thread's path and returns a
//! guard; dropping the guard pops the segment and folds the elapsed time
//! into a global table keyed by the **full path**, so
//! `explain_db/predict/gnn.forward` and a bare `gnn.forward` aggregate
//! separately. Worker threads spawned by the rayon stand-in [`adopt`] the
//! caller's path, so spans opened inside parallel closures nest under the
//! phase that launched them.
//!
//! Aggregation happens only at guard drop (one mutex acquisition); the
//! computation being observed is never reordered or blocked mid-flight,
//! preserving bitwise thread-count determinism.

#[cfg(feature = "enabled")]
pub use imp::{adopt, current_path, enter, open_spans, reset, snapshot, AdoptGuard, SpanGuard};

/// One aggregated span path: every completed guard with this full path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Slash-joined path, e.g. `explain_db/predict`.
    pub path: String,
    /// Completed guards aggregated here.
    pub count: u64,
    /// Total wall-clock across all completions, in nanoseconds.
    pub total_ns: u128,
    /// Fastest single completion.
    pub min_ns: u128,
    /// Slowest single completion.
    pub max_ns: u128,
    /// Per-completion latency distribution (p50/p90/p99/p999 source).
    pub latency: crate::latency::Hist,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::SpanRecord;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicI64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    #[derive(Clone, Default)]
    struct Stat {
        count: u64,
        total_ns: u128,
        min_ns: u128,
        max_ns: u128,
        latency: crate::latency::Hist,
    }

    static REGISTRY: Mutex<BTreeMap<String, Stat>> = Mutex::new(BTreeMap::new());
    /// Guards entered but not yet dropped, across all threads. A non-zero
    /// value in a final report means a span leaked (guard forgotten or a
    /// thread exited mid-span).
    static OPEN: AtomicI64 = AtomicI64::new(0);

    thread_local! {
        /// This thread's slash-joined span path.
        static PATH: RefCell<String> = const { RefCell::new(String::new()) };
    }

    /// RAII span guard; see [`enter`].
    #[must_use = "a span measures until dropped; binding it to _ drops immediately"]
    pub struct SpanGuard {
        /// `None` when observation was off at entry (inert guard).
        armed: Option<(usize, Instant)>,
    }

    /// Opens a span named `name` under the current thread path. Inert (no
    /// clock read, no path change) when observation is off. Accepts any
    /// `&str` (the request layer pushes formatted names); nothing outlives
    /// the call but the path bytes.
    pub fn enter(name: &str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { armed: None };
        }
        // Fix the trace epoch before reading the clock, so the very first
        // span's begin timestamp can never precede the epoch.
        let _ = crate::trace::active();
        let prev_len = PATH.with(|p| {
            let mut p = p.borrow_mut();
            let prev_len = p.len();
            if !p.is_empty() {
                p.push('/');
            }
            p.push_str(name);
            prev_len
        });
        OPEN.fetch_add(1, Ordering::Relaxed);
        SpanGuard { armed: Some((prev_len, Instant::now())) }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some((prev_len, start)) = self.armed.take() else { return };
            let end = Instant::now();
            let elapsed = end.duration_since(start).as_nanos();
            let path = PATH.with(|p| {
                let mut p = p.borrow_mut();
                let full = p.clone();
                p.truncate(prev_len);
                full
            });
            {
                let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
                // get_mut first: the steady state must not clone the path
                match reg.get_mut(&path) {
                    Some(stat) => fold(stat, elapsed),
                    None => {
                        let mut stat = Stat::default();
                        fold(&mut stat, elapsed);
                        reg.insert(path.clone(), stat);
                    }
                }
            }
            OPEN.fetch_sub(1, Ordering::Relaxed);
            // request attribution and trace events happen outside the
            // registry lock; both only read the clock values captured above
            if let Some(tag) = crate::context::current() {
                crate::context::attribute_span(tag, &path, elapsed);
            }
            if crate::trace::active() {
                crate::trace::record_pair(&path, start, end);
            }
        }
    }

    fn fold(stat: &mut Stat, elapsed: u128) {
        stat.count += 1;
        stat.total_ns += elapsed;
        stat.min_ns = if stat.count == 1 { elapsed } else { stat.min_ns.min(elapsed) };
        stat.max_ns = stat.max_ns.max(elapsed);
        stat.latency.record(elapsed.min(u64::MAX as u128) as u64);
    }

    /// The calling thread's current span path (empty when off or at root).
    pub fn current_path() -> String {
        if !crate::enabled() {
            return String::new();
        }
        PATH.with(|p| p.borrow().clone())
    }

    /// Replaces this thread's path with `path` until the guard drops —
    /// worker threads call this with the launching thread's
    /// [`current_path`] so their spans nest under the launching phase.
    #[must_use = "the adopted path reverts when the guard drops"]
    pub fn adopt(path: &str) -> AdoptGuard {
        if !crate::enabled() {
            return AdoptGuard { prev: None };
        }
        let prev = PATH.with(|p| std::mem::replace(&mut *p.borrow_mut(), path.to_string()));
        AdoptGuard { prev: Some(prev) }
    }

    /// Restores the pre-[`adopt`] path on drop.
    pub struct AdoptGuard {
        prev: Option<String>,
    }

    impl Drop for AdoptGuard {
        fn drop(&mut self) {
            if let Some(prev) = self.prev.take() {
                PATH.with(|p| *p.borrow_mut() = prev);
            }
        }
    }

    /// All aggregated spans, sorted by path (parents before children).
    pub fn snapshot() -> Vec<SpanRecord> {
        let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        reg.iter()
            .map(|(path, s)| SpanRecord {
                path: path.clone(),
                count: s.count,
                total_ns: s.total_ns,
                min_ns: s.min_ns,
                max_ns: s.max_ns,
                latency: s.latency.clone(),
            })
            .collect()
    }

    /// Number of guards currently open across all threads.
    pub fn open_spans() -> i64 {
        OPEN.load(Ordering::Relaxed)
    }

    /// Clears aggregated spans (open-guard accounting is untouched).
    pub fn reset() {
        REGISTRY.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::SpanRecord;

    /// Inert guard; the `enabled` feature is compiled out.
    pub struct SpanGuard;
    /// Inert guard; the `enabled` feature is compiled out.
    pub struct AdoptGuard;

    // Explicit (empty) Drop impls so code written against the real guards —
    // e.g. re-assigning a section guard to close the previous span — lints
    // identically whether or not the feature is compiled in.
    impl Drop for SpanGuard {
        fn drop(&mut self) {}
    }
    impl Drop for AdoptGuard {
        fn drop(&mut self) {}
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn enter(_name: &str) -> SpanGuard {
        SpanGuard
    }

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn current_path() -> String {
        String::new()
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn adopt(_path: &str) -> AdoptGuard {
        AdoptGuard
    }

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn snapshot() -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Always zero without the `enabled` feature.
    #[inline(always)]
    pub fn open_spans() -> i64 {
        0
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn reset() {}
}

#[cfg(not(feature = "enabled"))]
pub use noop::{adopt, current_path, enter, open_spans, reset, snapshot, AdoptGuard, SpanGuard};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // Tests only ever *enable* observation (never disable), because the
    // toggle is process-global and tests run concurrently.

    #[test]
    fn nested_spans_aggregate_by_full_path() {
        crate::set_enabled(true);
        {
            let _outer = enter("span_test.outer");
            let _inner = enter("span_test.inner");
        }
        let snap = snapshot();
        assert!(snap.iter().any(|s| s.path == "span_test.outer"), "{snap:?}");
        let inner = snap
            .iter()
            .find(|s| s.path == "span_test.outer/span_test.inner")
            .expect("nested path recorded");
        assert!(inner.count >= 1);
        assert!(inner.min_ns <= inner.max_ns);
        assert!(inner.total_ns >= inner.max_ns);
    }

    #[test]
    fn adopt_prefixes_worker_spans() {
        crate::set_enabled(true);
        let base = {
            let _phase = enter("span_test.phase");
            current_path()
        };
        assert!(base.ends_with("span_test.phase"));
        std::thread::scope(|s| {
            s.spawn(|| {
                let _adopted = adopt(&base);
                let _w = enter("span_test.worker");
            });
        });
        let snap = snapshot();
        let want = format!("{base}/span_test.worker");
        assert!(snap.iter().any(|s| s.path == want), "missing {want:?} in {snap:?}");
    }

    #[test]
    fn guard_balance_restores_path() {
        crate::set_enabled(true);
        let before = current_path();
        {
            let _a = enter("span_test.balance");
        }
        assert_eq!(current_path(), before);
    }
}
