//! End-of-run report: span tree to stderr, `OBS_report.json` to disk.
//!
//! JSON is emitted by hand — `gvex-obs` sits below every other crate
//! (including the serde stand-ins) and must stay dependency-free. The
//! schema is documented in DESIGN.md §8; `schema_version` bumps on any
//! incompatible change.

use crate::metrics::HistogramSnapshot;
use crate::span::SpanRecord;
use std::path::PathBuf;

/// Schema version stamped into `OBS_report.json`.
///
/// v2 (this version) adds per-span `p50_ms`/`p90_ms`/`p99_ms`/`p999_ms`
/// percentile fields, a top-level `requests` object (per-[`crate::context`]
/// ReqScope counts, latency percentiles, attributed spans/counters), and a
/// top-level `trace` object (ring occupancy and drop counter). All v1
/// fields are unchanged; [`crate::diff`] reads both versions.
pub const SCHEMA_VERSION: u64 = 2;

/// Default report file name, relative to the working directory; override
/// with `GVEX_OBS_JSON=/path/to/file.json`.
pub const DEFAULT_JSON_PATH: &str = "OBS_report.json";

/// Renders the report to stderr and writes the JSON file, returning its
/// path. Does nothing (returns `None`) unless observation is enabled, so
/// every binary can call it unconditionally at exit.
pub fn emit() -> Option<PathBuf> {
    if !crate::enabled() {
        return None;
    }
    eprint!("{}", render_text());
    let path = PathBuf::from(
        crate::env::string("GVEX_OBS_JSON").unwrap_or_else(|| DEFAULT_JSON_PATH.into()),
    );
    let written = match std::fs::write(&path, render_json()) {
        Ok(()) => {
            eprintln!("[gvex-obs] wrote {}", path.display());
            Some(path)
        }
        Err(err) => {
            eprintln!("[gvex-obs] failed to write {}: {err}", path.display());
            None
        }
    };
    // With GVEX_OBS_TRACE=path set, flush the span event ring as a
    // chrome://tracing document alongside the report.
    if crate::trace::active() {
        if let Some(trace_path) = crate::env::string("GVEX_OBS_TRACE") {
            let trace_path = PathBuf::from(trace_path);
            match crate::trace::write_chrome_trace(&trace_path) {
                Ok(()) => eprintln!(
                    "[gvex-obs] wrote {} ({} events, {} dropped)",
                    trace_path.display(),
                    crate::trace::events().len(),
                    crate::trace::dropped()
                ),
                Err(err) => {
                    eprintln!("[gvex-obs] failed to write {}: {err}", trace_path.display())
                }
            }
        }
    }
    written
}

/// The human-readable report: an indented span tree (count, total, mean per
/// path) followed by counters and histograms.
pub fn render_text() -> String {
    let mut out = String::new();
    out.push_str("[gvex-obs] ──────────────────────── run report ────────────────────────\n");
    let spans = crate::span::snapshot();
    if spans.is_empty() {
        out.push_str("[gvex-obs] no spans recorded\n");
    } else {
        out.push_str("[gvex-obs] spans (count · total · mean · p50 · p99):\n");
        for s in &spans {
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            let label = format!("{}{}", "  ".repeat(depth), name);
            let total = s.total_ns as f64 / 1e6;
            let mean = total / s.count.max(1) as f64;
            let p50 = s.latency.quantile_ns(0.50) as f64 / 1e6;
            let p99 = s.latency.quantile_ns(0.99) as f64 / 1e6;
            out.push_str(&format!(
                "[gvex-obs]   {label:<40} {:>7} · {total:>10.2}ms · {mean:>9.3}ms · {p50:>8.3}ms · {p99:>8.3}ms\n",
                s.count
            ));
        }
    }
    let requests = crate::context::snapshot();
    if !requests.is_empty() {
        out.push_str("[gvex-obs] requests (count · total · p50 · p99):\n");
        for r in &requests {
            let total = r.total_ns as f64 / 1e6;
            let p50 = r.latency.quantile_ns(0.50) as f64 / 1e6;
            let p99 = r.latency.quantile_ns(0.99) as f64 / 1e6;
            out.push_str(&format!(
                "[gvex-obs]   {:<40} {:>7} · {total:>10.2}ms · {p50:>8.3}ms · {p99:>8.3}ms\n",
                r.name, r.count
            ));
        }
    }
    let counters = crate::metrics::counters();
    if !counters.is_empty() {
        out.push_str("[gvex-obs] counters:\n");
        for (name, value) in &counters {
            out.push_str(&format!("[gvex-obs]   {name} = {value}\n"));
        }
    }
    let histograms = crate::metrics::histograms();
    if !histograms.is_empty() {
        out.push_str("[gvex-obs] histograms (count · mean · overflow):\n");
        for (name, h) in &histograms {
            out.push_str(&format!(
                "[gvex-obs]   {name}: {} · {:.1} · {}\n",
                h.count,
                h.mean(),
                h.overflow
            ));
        }
    }
    let open = crate::span::open_spans();
    if open != 0 {
        out.push_str(&format!("[gvex-obs] WARNING: {open} span(s) still open\n"));
    }
    out
}

/// The machine-readable report as a JSON document (see DESIGN.md §8 for the
/// schema).
pub fn render_json() -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"threads\": {},\n", crate::env::threads()));
    out.push_str(&format!("  \"open_spans\": {},\n", crate::span::open_spans()));
    out.push_str("  \"spans\": [\n");
    let spans = crate::span::snapshot();
    for (i, s) in spans.iter().enumerate() {
        let (p50, p90, p99, p999) = s.latency.percentiles_ns();
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"count\": {}, \"total_ms\": {}, \"min_ms\": {}, \"max_ms\": {}, \
             \"p50_ms\": {}, \"p90_ms\": {}, \"p99_ms\": {}, \"p999_ms\": {}}}{}\n",
            escape(&s.path),
            s.count,
            fmt_ms(s.total_ns),
            fmt_ms(s.min_ns),
            fmt_ms(s.max_ns),
            fmt_ms(p50 as u128),
            fmt_ms(p90 as u128),
            fmt_ms(p99 as u128),
            fmt_ms(p999 as u128),
            comma(i, spans.len()),
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"requests\": {\n");
    let requests = crate::context::snapshot();
    for (i, r) in requests.iter().enumerate() {
        let (p50, p90, p99, p999) = r.latency.percentiles_ns();
        out.push_str(&format!(
            "    \"{}\": {{\"count\": {}, \"total_ms\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \
             \"p99_ms\": {}, \"p999_ms\": {},\n",
            escape(&r.name),
            r.count,
            fmt_ms(r.total_ns),
            fmt_ms(p50 as u128),
            fmt_ms(p90 as u128),
            fmt_ms(p99 as u128),
            fmt_ms(p999 as u128),
        ));
        out.push_str("      \"spans\": {");
        for (j, (path, count, total_ns)) in r.spans.iter().enumerate() {
            out.push_str(&format!(
                "{}\"{}\": {{\"count\": {count}, \"total_ms\": {}}}",
                if j == 0 { "" } else { ", " },
                escape(path),
                fmt_ms(*total_ns),
            ));
        }
        out.push_str("},\n      \"counters\": {");
        for (j, (name, value)) in r.counters.iter().enumerate() {
            out.push_str(&format!(
                "{}\"{}\": {value}",
                if j == 0 { "" } else { ", " },
                escape(name),
            ));
        }
        out.push_str(&format!("}}}}{}\n", comma(i, requests.len())));
    }
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"trace\": {{\"active\": {}, \"events\": {}, \"dropped\": {}, \"capacity\": {}}},\n",
        crate::trace::active(),
        crate::trace::events().len(),
        crate::trace::dropped(),
        crate::trace::capacity(),
    ));
    out.push_str("  \"counters\": {\n");
    let counters = crate::metrics::counters();
    for (i, (name, value)) in counters.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {value}{}\n", escape(name), comma(i, counters.len())));
    }
    out.push_str("  },\n");
    out.push_str("  \"histograms\": {\n");
    let histograms = crate::metrics::histograms();
    for (i, (name, h)) in histograms.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"bounds\": {}, \"counts\": {}, \"overflow\": {}, \"count\": {}, \"sum\": {}}}{}\n",
            escape(name),
            u64_array(&crate::metrics::HISTOGRAM_BOUNDS),
            u64_array(&h.counts),
            h.overflow,
            h.count,
            h.sum,
            comma(i, histograms.len()),
        ));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// `,` between elements, nothing after the last.
fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 < len {
        ","
    } else {
        ""
    }
}

/// Nanoseconds as fractional milliseconds with fixed precision (a plain JSON
/// number).
fn fmt_ms(ns: u128) -> String {
    format!("{:.6}", ns as f64 / 1e6)
}

fn u64_array(values: &[u64]) -> String {
    let inner: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(", "))
}

/// Escapes a string for a JSON literal. Metric names are ASCII identifiers
/// in practice; this keeps the output valid even if one is not. Shared with
/// the trace writer.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Re-exported for report consumers that want to pretty-print histograms
/// themselves.
pub fn histograms() -> Vec<(String, HistogramSnapshot)> {
    crate::metrics::histograms()
}

/// Re-exported for report consumers that want the raw span table.
pub fn spans() -> Vec<SpanRecord> {
    crate::span::snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("plain.name"), "plain.name");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_renders_even_when_empty() {
        // With the feature off (or nothing recorded) the document must
        // still be well-formed.
        let json = render_json();
        assert!(json.starts_with("{\n"));
        assert!(json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(json.contains("\"requests\""));
        assert!(json.contains("\"trace\""));
        assert!(json.trim_end().ends_with('}'));
    }
}
