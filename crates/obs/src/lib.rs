//! `gvex-obs`: zero-overhead tracing, metrics, and run reports.
//!
//! The explain pipeline is instrumented with three primitives:
//!
//! - [`span!`] — an RAII guard recording nested wall-clock under a
//!   slash-joined path (`explain_db/predict/gnn.forward`), aggregated
//!   thread-safely by full path;
//! - [`counter!`] — a named monotonic counter;
//! - [`histogram!`] — a named fixed-bucket (power-of-two bounds) histogram.
//!
//! Observation never alters computation: guards only read the clock and
//! update side tables, so the bitwise thread-count determinism guarantee of
//! the pipeline is preserved (pinned by `tests/determinism.rs`).
//!
//! Two switches gate the machinery:
//!
//! 1. the `enabled` **cargo feature** (forwarded as `obs` by every gvex
//!    crate) — without it the macros expand to inlined no-ops with zero
//!    runtime cost;
//! 2. the `GVEX_OBS` **environment variable** (or [`set_enabled`] in
//!    process) — with the feature compiled in but the toggle off, each
//!    primitive costs one relaxed atomic load.
//!
//! At the end of a run, [`report::emit`] renders the span tree to stderr and
//! writes machine-readable `OBS_report.json` (path override: `GVEX_OBS_JSON`).
//!
//! On top of the primitives sit four telemetry layers (all inert when
//! observation is off):
//!
//! - [`context`] — explicit [`context::ReqScope`] request handles tagging
//!   every span/counter recorded under them, propagated across the rayon
//!   stand-in like span paths, reported with per-request p50/p90/p99/p999;
//! - [`latency`] — the hand-rolled HDR-style histogram behind those
//!   percentiles, also recorded per span path;
//! - [`trace`] — a bounded ring of span begin/end events, flushed to a
//!   `chrome://tracing` JSON when `GVEX_OBS_TRACE=path` is set;
//! - [`diff`] — a backward-compatible `OBS_report.json` reader and the
//!   regression comparison behind `gvex obs diff`.

pub mod context;
pub mod diff;
pub mod env;
pub mod latency;
pub mod metrics;
pub mod report;
pub mod span;
pub mod trace;

#[cfg(feature = "enabled")]
mod state {
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = uninitialised (consult `GVEX_OBS`), 1 = off, 2 = on.
    static STATE: AtomicU8 = AtomicU8::new(0);

    #[inline]
    pub fn enabled() -> bool {
        match STATE.load(Ordering::Relaxed) {
            1 => false,
            2 => true,
            _ => {
                let on = crate::env::flag("GVEX_OBS");
                STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
                on
            }
        }
    }

    pub fn set_enabled(on: bool) {
        STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    }
}

/// Whether observation is active right now (feature compiled in **and**
/// runtime toggle on). The first call reads `GVEX_OBS`; afterwards it is a
/// single relaxed atomic load.
#[cfg(feature = "enabled")]
#[inline]
pub fn enabled() -> bool {
    state::enabled()
}

/// Always `false` when the `enabled` feature is compiled out.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// Overrides the `GVEX_OBS` toggle in process — used by tests and benches
/// that must observe one run and not another without re-execing.
#[cfg(feature = "enabled")]
pub fn set_enabled(on: bool) {
    state::set_enabled(on);
}

/// No-op when the `enabled` feature is compiled out.
#[cfg(not(feature = "enabled"))]
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// Clears all recorded spans, counters, histograms, and request records
/// (the enable state and the trace ring are untouched — see
/// [`trace::clear`]). Benches call this between measured and instrumented
/// runs.
pub fn reset() {
    span::reset();
    metrics::reset();
    context::reset();
}

/// Opens a wall-clock span until the end of the enclosing scope:
/// `gvex_obs::span!("mining.pgen");`. Nested spans extend the thread's
/// slash-joined path. Expands to a no-op without the `enabled` feature.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _gvex_obs_span_guard = $crate::span::enter($name);
    };
}

/// Increments a named counter: `counter!("gnn.trace_cache.hits")` adds 1,
/// `counter!("mining.pgen.occurrences", n)` adds `n`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::metrics::counter_add($name, 1)
    };
    ($name:expr, $n:expr) => {
        $crate::metrics::counter_add($name, $n)
    };
}

/// Records a value into a named fixed-bucket histogram:
/// `histogram!("rayon.chunk_items", len)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr) => {
        $crate::metrics::histogram_record($name, $value)
    };
}
