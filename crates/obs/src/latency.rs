//! HDR-style log-bucketed latency histogram with quantile extraction.
//!
//! Span aggregation (min/mean/max) answers "how slow was the worst call",
//! but SLOs are phrased in percentiles — p99 of a request, not its maximum.
//! [`Hist`] records nanosecond durations into log-spaced buckets with a
//! bounded relative error and extracts p50/p90/p99/p999 by a cumulative
//! walk, streaming-friendly: `record` is O(1), memory is a fixed table.
//!
//! Bucket layout (the classic HDR shape, hand-rolled — this crate stays
//! dependency-free):
//!
//! * values `0..8` get exact unit buckets;
//! * every power-of-two octave above that is split into 8 linear
//!   sub-buckets, so any recorded value is over-estimated by at most
//!   **12.5%** when read back out of its bucket upper bound.
//!
//! The full `u64` range is covered (8 + 61·8 = 496 buckets); allocation is
//! lazy, so an empty histogram is two machine words. This module is always
//! compiled, independent of the `enabled` feature: it is pure data, used by
//! the span registry when observation is on and by report readers
//! ([`crate::diff`]) regardless.

/// Values below this get exact unit buckets.
const LINEAR_MAX: u64 = 8;
/// log2 of the sub-buckets per octave (8 ⇒ ≤ 12.5% relative error).
const SUB_BITS: u32 = 3;
/// Total bucket count covering all of `u64`.
pub const BUCKETS: usize = LINEAR_MAX as usize + (64 - SUB_BITS as usize) * (1 << SUB_BITS);

/// Index of the bucket `ns` falls into (total order, full `u64` coverage).
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns < LINEAR_MAX {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros(); // >= SUB_BITS because ns >= 8
    let sub = ((ns >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize;
    LINEAR_MAX as usize + ((exp - SUB_BITS) as usize) * (1 << SUB_BITS) + sub
}

/// Largest value that lands in bucket `index` — what quantile extraction
/// reports, so percentiles over-estimate by at most one bucket width.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < LINEAR_MAX as usize {
        return index as u64;
    }
    let octave = (index - LINEAR_MAX as usize) / (1 << SUB_BITS);
    let sub = ((index - LINEAR_MAX as usize) % (1 << SUB_BITS)) as u64;
    let exp = octave as u32 + SUB_BITS;
    let width = 1u64 << (exp - SUB_BITS);
    let lower = (1u64 << exp) + sub * width;
    lower.saturating_add(width - 1)
}

/// A streaming log-bucketed histogram of nanosecond durations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Hist {
    /// Per-bucket counts; empty until the first record, `BUCKETS` long after.
    counts: Vec<u64>,
    count: u64,
}

impl Hist {
    /// An empty histogram (no bucket table allocated yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one duration. O(1); allocates the bucket table on first use.
    pub fn record(&mut self, ns: u64) {
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
    }

    /// Total recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds `other` into `self` bucket-wise.
    pub fn merge(&mut self, other: &Hist) {
        if other.counts.is_empty() {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; BUCKETS];
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding the rank-⌈q·n⌉ value — over-estimates by ≤ 12.5%. Returns 0
    /// for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }

    /// `(p50, p90, p99, p999)` in nanoseconds — the report's fixed set.
    pub fn percentiles_ns(&self) -> (u64, u64, u64, u64) {
        (
            self.quantile_ns(0.50),
            self.quantile_ns(0.90),
            self.quantile_ns(0.99),
            self.quantile_ns(0.999),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper_bound(bucket_of(v)), v);
        }
        let mut h = Hist::new();
        h.record(3);
        assert_eq!(h.quantile_ns(0.5), 3);
        assert_eq!(h.quantile_ns(1.0), 3);
    }

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut prev = 0;
        for v in [0u64, 1, 7, 8, 9, 15, 16, 100, 1_000, 1 << 20, 1 << 40, u64::MAX / 2, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket index must be monotone in value ({v})");
            assert!(b < BUCKETS);
            assert!(bucket_upper_bound(b) >= v, "upper bound below the value ({v})");
            prev = b;
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn relative_error_is_bounded() {
        // the bucket upper bound over-estimates by at most 12.5%
        for v in (8u64..1 << 24).step_by(997) {
            let ub = bucket_upper_bound(bucket_of(v)) as f64;
            assert!(ub >= v as f64);
            assert!(ub <= v as f64 * 1.125, "bound {ub} too loose for {v}");
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = Hist::new();
        for v in 1..=1000u64 {
            h.record(v * 1000); // 1µs .. 1ms, uniform
        }
        assert_eq!(h.count(), 1000);
        let (p50, p90, p99, p999) = h.percentiles_ns();
        for (q, got) in [(0.5, p50), (0.9, p90), (0.99, p99), (0.999, p999)] {
            let exact = (q * 1000.0) as u64 * 1000;
            assert!(got as f64 >= exact as f64 * 0.99, "p{q} {got} under exact {exact}");
            assert!(got as f64 <= exact as f64 * 1.125, "p{q} {got} above error bound");
        }
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        a.record(10);
        b.record(10);
        b.record(1 << 30);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.quantile_ns(0.5), bucket_upper_bound(bucket_of(10)));
        a.merge(&Hist::new()); // merging an empty hist is a no-op
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.99), 0);
    }
}
