//! Request-scoped attribution: tagging spans and counters per request.
//!
//! The span tree answers "where did this *process* spend its time"; a
//! serving daemon needs "where did this *request* spend its time". A
//! [`ReqScope`] is an explicit RAII handle opened at a request boundary —
//! an `ExplainSession` call, a batched prediction, a bench iteration — that
//! tags everything recorded while it is active:
//!
//! * the request itself is counted and its wall-clock recorded into a
//!   per-request-name latency histogram ([`crate::latency::Hist`], so the
//!   report can state p50/p90/p99/p999 per request kind);
//! * every span completing under the scope folds its elapsed time into the
//!   request's own span table (in addition to the global one);
//! * every counter incremented under the scope is mirrored into the
//!   request's counter table.
//!
//! **Propagation rules** (DESIGN.md §13):
//!
//! 1. The active tag is thread-local, layered on the same pattern as the
//!    span path stack. The rayon stand-in captures [`current`] on the
//!    launching thread and [`adopt`]s it in every worker, exactly like span
//!    paths — so work fanned out under a request stays attributed to it.
//! 2. Scopes nest innermost-wins: `ReqScope::begin` replaces the tag and
//!    the guard restores the previous one on drop. A nested request owns
//!    its own spans/counters; the outer request still owns the nested
//!    request's *total* wall-clock (its own guard keeps timing).
//! 3. Everything is inert when observation is off — begin reads one atomic
//!    and returns an unarmed guard; attribution never alters computation.
//!
//! Request names are `&'static str` by design: attribution sits on the span
//! drop path and a static tag keeps the hot check to a `Cell` read.

use crate::latency::Hist;

/// Aggregated telemetry for one request name, as reported.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestRecord {
    /// The tag passed to [`ReqScope::begin`].
    pub name: String,
    /// Completed requests under this name.
    pub count: u64,
    /// Total request wall-clock, nanoseconds.
    pub total_ns: u128,
    /// Per-request latency distribution (p50/p90/p99/p999 source).
    pub latency: Hist,
    /// Span paths completed under this request: `(path, count, total_ns)`.
    pub spans: Vec<(String, u64, u128)>,
    /// Counters incremented under this request: `(name, total)`.
    pub counters: Vec<(String, u64)>,
}

#[cfg(feature = "enabled")]
pub use imp::{adopt, begin, current, reset, snapshot, ReqAdoptGuard, ReqScope};
#[cfg(feature = "enabled")]
pub(crate) use imp::{attribute_counter, attribute_span};

#[cfg(feature = "enabled")]
mod imp {
    use super::RequestRecord;
    use crate::latency::Hist;
    use std::cell::Cell;
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    use std::time::Instant;

    #[derive(Default)]
    struct ReqStat {
        count: u64,
        total_ns: u128,
        latency: Hist,
        spans: BTreeMap<String, (u64, u128)>,
        counters: BTreeMap<String, u64>,
    }

    static REQUESTS: Mutex<BTreeMap<&'static str, ReqStat>> = Mutex::new(BTreeMap::new());

    thread_local! {
        /// The innermost active request tag on this thread.
        static CURRENT: Cell<Option<&'static str>> = const { Cell::new(None) };
    }

    /// RAII request scope; see [`begin`].
    #[must_use = "a request scope measures until dropped; binding it to _ drops immediately"]
    pub struct ReqScope {
        /// `None` when observation was off at entry (inert guard).
        armed: Option<(&'static str, Option<&'static str>, Instant)>,
    }

    impl ReqScope {
        /// Alias for [`begin`], so call sites read
        /// `gvex_obs::context::ReqScope::begin("session.explain")`.
        pub fn begin(name: &'static str) -> ReqScope {
            begin(name)
        }
    }

    /// Opens a request scope named `name`: the calling thread's (and, via
    /// rayon adoption, its workers') spans and counters are attributed to
    /// it until the guard drops. Inert when observation is off.
    pub fn begin(name: &'static str) -> ReqScope {
        if !crate::enabled() {
            return ReqScope { armed: None };
        }
        let prev = CURRENT.with(|c| c.replace(Some(name)));
        ReqScope { armed: Some((name, prev, Instant::now())) }
    }

    impl Drop for ReqScope {
        fn drop(&mut self) {
            let Some((name, prev, start)) = self.armed.take() else { return };
            let end = Instant::now();
            CURRENT.with(|c| c.set(prev));
            let elapsed = end.duration_since(start).as_nanos();
            {
                let mut reqs = REQUESTS.lock().unwrap_or_else(|e| e.into_inner());
                let stat = reqs.entry(name).or_default();
                stat.count += 1;
                stat.total_ns += elapsed;
                stat.latency.record(elapsed.min(u64::MAX as u128) as u64);
            }
            if crate::trace::active() {
                crate::trace::record_pair(&format!("req:{name}"), start, end);
            }
        }
    }

    /// The innermost active request tag on the calling thread — what the
    /// rayon stand-in captures before fanning out.
    #[inline]
    pub fn current() -> Option<&'static str> {
        CURRENT.with(|c| c.get())
    }

    /// Installs `tag` as this thread's active request until the guard
    /// drops — worker threads call this with the launching thread's
    /// [`current`], mirroring `span::adopt`.
    #[must_use = "the adopted request tag reverts when the guard drops"]
    pub fn adopt(tag: Option<&'static str>) -> ReqAdoptGuard {
        if !crate::enabled() {
            return ReqAdoptGuard { prev: None };
        }
        ReqAdoptGuard { prev: Some(CURRENT.with(|c| c.replace(tag))) }
    }

    /// Restores the pre-[`adopt`] tag on drop.
    pub struct ReqAdoptGuard {
        prev: Option<Option<&'static str>>,
    }

    impl Drop for ReqAdoptGuard {
        fn drop(&mut self) {
            if let Some(prev) = self.prev.take() {
                CURRENT.with(|c| c.set(prev));
            }
        }
    }

    /// Folds a completed span into the active request's span table (called
    /// by the span guard on drop when a tag is active).
    pub(crate) fn attribute_span(tag: &'static str, path: &str, elapsed_ns: u128) {
        let mut reqs = REQUESTS.lock().unwrap_or_else(|e| e.into_inner());
        let stat = reqs.entry(tag).or_default();
        let (count, total) = stat.spans.entry(path.to_string()).or_default();
        *count += 1;
        *total += elapsed_ns;
    }

    /// Mirrors a counter increment into the active request's counter table
    /// (called by `metrics::counter_add` when a tag is active).
    pub(crate) fn attribute_counter(tag: &'static str, name: &str, n: u64) {
        let mut reqs = REQUESTS.lock().unwrap_or_else(|e| e.into_inner());
        let stat = reqs.entry(tag).or_default();
        let total = stat.counters.entry(name.to_string()).or_default();
        *total = total.saturating_add(n);
    }

    /// All request records, sorted by name.
    pub fn snapshot() -> Vec<RequestRecord> {
        let reqs = REQUESTS.lock().unwrap_or_else(|e| e.into_inner());
        reqs.iter()
            .map(|(name, s)| RequestRecord {
                name: name.to_string(),
                count: s.count,
                total_ns: s.total_ns,
                latency: s.latency.clone(),
                spans: s.spans.iter().map(|(p, &(c, t))| (p.clone(), c, t)).collect(),
                counters: s.counters.iter().map(|(n, &v)| (n.clone(), v)).collect(),
            })
            .collect()
    }

    /// Clears all request records (active tags are untouched).
    pub fn reset() {
        REQUESTS.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::RequestRecord;

    /// Inert guard; the `enabled` feature is compiled out.
    pub struct ReqScope;
    /// Inert guard; the `enabled` feature is compiled out.
    pub struct ReqAdoptGuard;

    impl Drop for ReqScope {
        fn drop(&mut self) {}
    }
    impl Drop for ReqAdoptGuard {
        fn drop(&mut self) {}
    }

    impl ReqScope {
        /// No-op: the `enabled` feature is compiled out.
        #[inline(always)]
        pub fn begin(_name: &'static str) -> ReqScope {
            ReqScope
        }
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn begin(_name: &'static str) -> ReqScope {
        ReqScope
    }

    /// Always `None` without the `enabled` feature.
    #[inline(always)]
    pub fn current() -> Option<&'static str> {
        None
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn adopt(_tag: Option<&'static str>) -> ReqAdoptGuard {
        ReqAdoptGuard
    }

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn snapshot() -> Vec<RequestRecord> {
        Vec::new()
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn reset() {}
}

#[cfg(not(feature = "enabled"))]
pub use noop::{adopt, begin, current, reset, snapshot, ReqAdoptGuard, ReqScope};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // Tests only ever *enable* observation; unique request names per test
    // (the registry is process-global and tests run concurrently).

    #[test]
    fn scope_counts_and_times_requests() {
        crate::set_enabled(true);
        {
            let _req = ReqScope::begin("ctx_test.basic");
            std::hint::black_box(0u64);
        }
        {
            let _req = ReqScope::begin("ctx_test.basic");
        }
        let rec = snapshot().into_iter().find(|r| r.name == "ctx_test.basic").unwrap();
        assert_eq!(rec.count, 2);
        assert_eq!(rec.latency.count(), 2);
        assert!(rec.latency.quantile_ns(0.99) as u128 * 2 >= rec.total_ns / 2);
    }

    #[test]
    fn spans_and_counters_attribute_to_the_active_request() {
        crate::set_enabled(true);
        {
            let _req = ReqScope::begin("ctx_test.attr");
            {
                let _s = crate::span::enter("ctx_test.attr_span");
            }
            crate::metrics::counter_add("ctx_test.attr_counter", 3);
        }
        let rec = snapshot().into_iter().find(|r| r.name == "ctx_test.attr").unwrap();
        assert!(
            rec.spans.iter().any(|(p, c, _)| p.ends_with("ctx_test.attr_span") && *c == 1),
            "{:?}",
            rec.spans
        );
        assert!(
            rec.counters.iter().any(|(n, v)| n == "ctx_test.attr_counter" && *v == 3),
            "{:?}",
            rec.counters
        );
    }

    #[test]
    fn nesting_is_innermost_wins_and_restores() {
        crate::set_enabled(true);
        let _outer = ReqScope::begin("ctx_test.outer");
        assert_eq!(current(), Some("ctx_test.outer"));
        {
            let _inner = ReqScope::begin("ctx_test.inner");
            assert_eq!(current(), Some("ctx_test.inner"));
            crate::metrics::counter_add("ctx_test.nested_counter", 1);
        }
        assert_eq!(current(), Some("ctx_test.outer"));
        let recs = snapshot();
        let inner = recs.iter().find(|r| r.name == "ctx_test.inner").unwrap();
        assert!(inner.counters.iter().any(|(n, _)| n == "ctx_test.nested_counter"));
        if let Some(outer) = recs.iter().find(|r| r.name == "ctx_test.outer") {
            assert!(
                !outer.counters.iter().any(|(n, _)| n == "ctx_test.nested_counter"),
                "nested counter must attribute to the innermost scope only"
            );
        }
    }

    #[test]
    fn workers_adopt_the_launching_tag() {
        crate::set_enabled(true);
        let _req = ReqScope::begin("ctx_test.adopt");
        let tag = current();
        std::thread::scope(|s| {
            s.spawn(move || {
                let _adopted = adopt(tag);
                crate::metrics::counter_add("ctx_test.adopted_counter", 1);
            });
        });
        // the scope is still open; the worker's attribution already landed
        let rec = snapshot()
            .into_iter()
            .find(|r| r.name == "ctx_test.adopt")
            .expect("attribution creates the record before the scope closes");
        assert!(
            rec.counters.iter().any(|(n, v)| n == "ctx_test.adopted_counter" && *v == 1),
            "{:?}",
            rec.counters
        );
    }
}
