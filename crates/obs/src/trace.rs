//! Chrome-trace export: a bounded ring of span begin/end events.
//!
//! With `GVEX_OBS_TRACE=/path/to/trace.json` set (and observation on), every
//! completed span additionally appends a begin/end event pair to a global
//! ring buffer; [`crate::report::emit`] flushes the ring to a JSON file
//! loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev),
//! with one track per thread.
//!
//! Design constraints, in order:
//!
//! 1. **Never perturb the computation.** Slot indices are claimed with a
//!    single `fetch_add` (lock-free); each claimed slot is written exactly
//!    once through its own uncontended per-slot lock, so writers never wait
//!    on each other.
//! 2. **Bounded.** The ring holds `GVEX_OBS_TRACE_CAP` events (default
//!    65 536, rounded down to even); once full, further pairs are *dropped
//!    and counted* rather than overwriting — the head of a run matters more
//!    than its tail for startup analysis, and dropping keeps every retained
//!    begin matched with its end.
//! 3. **Matched by construction.** Both events of a span are claimed with
//!    one `fetch_add(2)` at guard drop, so a pair lands entirely or not at
//!    all; the flushed file never contains an unmatched begin/end.
//!
//! Timestamps are nanoseconds since a process-local epoch (first trace
//! activation), emitted as microseconds in the JSON as the format requires.

use std::sync::Arc;

/// One span boundary held in the ring.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Stable per-thread track id (small integers from 1).
    pub tid: u64,
    /// `true` for the begin ("B") event, `false` for the end ("E").
    pub begin: bool,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Span duration — carried on both events for nesting-stable sorting.
    pub dur_ns: u64,
    /// Full slash-joined span path (shared between the B and E event).
    pub name: Arc<str>,
}

/// Default ring capacity in events (two per span).
pub const DEFAULT_CAPACITY: usize = 65_536;

#[cfg(feature = "enabled")]
pub use imp::{
    active, capacity, clear, dropped, epoch, events, force_active, record_pair, write_chrome_trace,
};

#[cfg(feature = "enabled")]
mod imp {
    use super::{TraceEvent, DEFAULT_CAPACITY};
    use std::cell::Cell;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// 0 = uninitialised (consult `GVEX_OBS_TRACE`), 1 = off, 2 = on.
    static MODE: AtomicU8 = AtomicU8::new(0);
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static RING: OnceLock<Ring> = OnceLock::new();
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        /// This thread's track id (0 = unassigned).
        static TID: Cell<u64> = const { Cell::new(0) };
    }

    struct Ring {
        /// Write-once slots; each is locked only by its single claimant
        /// (tickets are unique) and by the flush/clear paths.
        slots: Vec<Mutex<Option<TraceEvent>>>,
        /// Next free slot index; grows past `slots.len()` once full.
        next: AtomicUsize,
        /// Events that found no slot (always incremented in pairs).
        dropped: AtomicU64,
    }

    fn ring() -> &'static Ring {
        RING.get_or_init(|| {
            let cap = match crate::env::parse_usize("GVEX_OBS_TRACE_CAP") {
                Ok(Some(n)) if n >= 2 => n & !1, // even, so B/E pairs never straddle the end
                _ => DEFAULT_CAPACITY,
            };
            Ring {
                slots: (0..cap).map(|_| Mutex::new(None)).collect(),
                next: AtomicUsize::new(0),
                dropped: AtomicU64::new(0),
            }
        })
    }

    /// The process-local trace epoch, fixed at first use. Called by
    /// `span::enter` before reading the clock so event timestamps are never
    /// earlier than the epoch.
    pub fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    /// Whether trace recording is on: `GVEX_OBS_TRACE` is set (first call)
    /// or [`force_active`] was used. One relaxed atomic load afterwards.
    #[inline]
    pub fn active() -> bool {
        match MODE.load(Ordering::Relaxed) {
            1 => false,
            2 => true,
            _ => {
                let on = crate::env::string("GVEX_OBS_TRACE").is_some();
                if on {
                    let _ = epoch();
                }
                MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
                on
            }
        }
    }

    /// Overrides the `GVEX_OBS_TRACE` toggle in process — tests and benches
    /// trace one run and not another without re-execing.
    pub fn force_active(on: bool) {
        if on {
            let _ = epoch();
        }
        MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    }

    fn tid() -> u64 {
        TID.with(|t| {
            let v = t.get();
            if v != 0 {
                return v;
            }
            let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(v);
            v
        })
    }

    /// Appends the begin/end pair for one completed span. Both events land
    /// or neither does (two tickets, one claim), keeping the ring matched.
    pub fn record_pair(name: &str, start: Instant, end: Instant) {
        let r = ring();
        let i = r.next.fetch_add(2, Ordering::Relaxed);
        if i + 1 >= r.slots.len() {
            r.dropped.fetch_add(2, Ordering::Relaxed);
            return;
        }
        let e = epoch();
        let ts = start.saturating_duration_since(e).as_nanos().min(u64::MAX as u128) as u64;
        let te = end.saturating_duration_since(e).as_nanos().min(u64::MAX as u128) as u64;
        let dur = te.saturating_sub(ts);
        let name: Arc<str> = Arc::from(name);
        let t = tid();
        *r.slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(TraceEvent {
            tid: t,
            begin: true,
            ts_ns: ts,
            dur_ns: dur,
            name: Arc::clone(&name),
        });
        *r.slots[i + 1].lock().unwrap_or_else(|e| e.into_inner()) =
            Some(TraceEvent { tid: t, begin: false, ts_ns: te, dur_ns: dur, name });
    }

    /// All retained events, sorted for proper nesting: by timestamp, begins
    /// before ends at a tie, outer (longer) begins before inner ones.
    pub fn events() -> Vec<TraceEvent> {
        let Some(r) = RING.get() else { return Vec::new() };
        let used = r.next.load(Ordering::Relaxed).min(r.slots.len());
        let mut evs: Vec<TraceEvent> = r.slots[..used]
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        evs.sort_by_key(|e| {
            (e.ts_ns, !e.begin, if e.begin { u64::MAX - e.dur_ns } else { e.dur_ns })
        });
        evs
    }

    /// Events dropped because the ring was full (counted in pairs).
    pub fn dropped() -> u64 {
        RING.get().map_or(0, |r| r.dropped.load(Ordering::Relaxed))
    }

    /// Ring capacity in events (0 before the first record).
    pub fn capacity() -> usize {
        RING.get().map_or(0, |r| r.slots.len())
    }

    /// Empties the ring and zeroes the drop counter. For tests and benches
    /// only — concurrent recorders would interleave with the wipe.
    pub fn clear() {
        if let Some(r) = RING.get() {
            for s in &r.slots {
                *s.lock().unwrap_or_else(|e| e.into_inner()) = None;
            }
            r.next.store(0, Ordering::Relaxed);
            r.dropped.store(0, Ordering::Relaxed);
        }
    }

    /// Writes the ring as a `chrome://tracing` JSON document to `path`.
    pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
        let evs = events();
        let mut out = String::with_capacity(128 + evs.len() * 96);
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
        out.push_str(&format!(
            "  \"otherData\": {{\"dropped_events\": {}, \"capacity\": {}}},\n",
            dropped(),
            capacity()
        ));
        out.push_str("  \"traceEvents\": [\n");
        for (i, e) in evs.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"{}\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}}}{}\n",
                crate::report::escape(&e.name),
                if e.begin { 'B' } else { 'E' },
                e.tid,
                e.ts_ns as f64 / 1e3,
                if i + 1 < evs.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out)
    }
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::TraceEvent;
    use std::path::Path;
    use std::time::Instant;

    /// Always `false` without the `enabled` feature.
    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn force_active(_on: bool) {}

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn record_pair(_name: &str, _start: Instant, _end: Instant) {}

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn events() -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Always zero without the `enabled` feature.
    #[inline(always)]
    pub fn dropped() -> u64 {
        0
    }

    /// Always zero without the `enabled` feature.
    #[inline(always)]
    pub fn capacity() -> usize {
        0
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn clear() {}

    /// The current instant; no epoch is tracked without the feature.
    #[inline(always)]
    pub fn epoch() -> Instant {
        Instant::now()
    }

    /// Writes nothing: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn write_chrome_trace(_path: &Path) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(not(feature = "enabled"))]
pub use noop::{
    active, capacity, clear, dropped, epoch, events, force_active, record_pair, write_chrome_trace,
};
