//! Named counters and fixed-bucket histograms.
//!
//! Both registries are global `Mutex<BTreeMap>`s keyed by metric name; the
//! stable name table lives in DESIGN.md §8. Recording is a no-op unless the
//! `enabled` feature is compiled in **and** the runtime toggle is on.

/// Histogram bucket upper bounds (inclusive), power-of-two spaced with an
/// explicit zero bucket. Values above the last bound land in the overflow
/// bucket. One shared shape keeps reports comparable across metrics.
pub const HISTOGRAM_BOUNDS: [u64; 16] =
    [0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536, 262144];

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts, aligned with [`HISTOGRAM_BOUNDS`].
    pub counts: [u64; HISTOGRAM_BOUNDS.len()],
    /// Values above the last bound.
    pub overflow: u64,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Index of the bucket `value` falls into, or `None` for the overflow
/// bucket. Bounds are upper-inclusive: 0 → bucket 0, 1 → bucket 1,
/// 3 → bucket 3 (bound 4).
pub fn bucket_index(value: u64) -> Option<usize> {
    HISTOGRAM_BOUNDS.iter().position(|&bound| value <= bound)
}

#[cfg(feature = "enabled")]
pub use imp::{counter_add, counters, histogram_record, histograms, reset};

#[cfg(feature = "enabled")]
mod imp {
    use super::{bucket_index, HistogramSnapshot, HISTOGRAM_BOUNDS};
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
    static HISTOGRAMS: Mutex<BTreeMap<String, HistogramSnapshot>> = Mutex::new(BTreeMap::new());

    /// Adds `n` to the counter `name` (no-op when observation is off). When
    /// a request scope is active on this thread, the increment is also
    /// mirrored into that request's counter table.
    pub fn counter_add(name: &str, n: u64) {
        if !crate::enabled() {
            return;
        }
        {
            let mut counters = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
            // `get_mut` first: the common case must not allocate a key String.
            if let Some(total) = counters.get_mut(name) {
                *total = total.saturating_add(n);
            } else {
                counters.insert(name.to_string(), n);
            }
        }
        if let Some(tag) = crate::context::current() {
            crate::context::attribute_counter(tag, name, n);
        }
    }

    /// Records `value` into the histogram `name` (no-op when observation is
    /// off).
    pub fn histogram_record(name: &str, value: u64) {
        if !crate::enabled() {
            return;
        }
        let mut hists = HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner());
        if !hists.contains_key(name) {
            hists.insert(
                name.to_string(),
                HistogramSnapshot {
                    counts: [0; HISTOGRAM_BOUNDS.len()],
                    overflow: 0,
                    count: 0,
                    sum: 0,
                },
            );
        }
        let hist = hists.get_mut(name).expect("just inserted");
        match bucket_index(value) {
            Some(i) => hist.counts[i] += 1,
            None => hist.overflow += 1,
        }
        hist.count += 1;
        hist.sum = hist.sum.saturating_add(value);
    }

    /// All counters, sorted by name.
    pub fn counters() -> Vec<(String, u64)> {
        let counters = COUNTERS.lock().unwrap_or_else(|e| e.into_inner());
        counters.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// All histograms, sorted by name.
    pub fn histograms() -> Vec<(String, HistogramSnapshot)> {
        let hists = HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner());
        hists.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Clears both registries.
    pub fn reset() {
        COUNTERS.lock().unwrap_or_else(|e| e.into_inner()).clear();
        HISTOGRAMS.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(not(feature = "enabled"))]
mod noop {
    use super::HistogramSnapshot;

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn counter_add(_name: &str, _n: u64) {}

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn histogram_record(_name: &str, _value: u64) {}

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn counters() -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Always empty without the `enabled` feature.
    #[inline(always)]
    pub fn histograms() -> Vec<(String, HistogramSnapshot)> {
        Vec::new()
    }

    /// No-op: the `enabled` feature is compiled out.
    #[inline(always)]
    pub fn reset() {}
}

#[cfg(not(feature = "enabled"))]
pub use noop::{counter_add, counters, histogram_record, histograms, reset};

#[cfg(test)]
mod bucket_tests {
    use super::*;

    #[test]
    fn zero_gets_its_own_bucket() {
        assert_eq!(bucket_index(0), Some(0));
        assert_eq!(bucket_index(1), Some(1));
    }

    #[test]
    fn bounds_are_upper_inclusive() {
        assert_eq!(bucket_index(4), Some(3)); // bounds[3] == 4
        assert_eq!(bucket_index(5), Some(4)); // next bound is bounds[4] == 8
        assert_eq!(bucket_index(262144), Some(HISTOGRAM_BOUNDS.len() - 1));
    }

    #[test]
    fn above_last_bound_is_overflow() {
        assert_eq!(bucket_index(262145), None);
        assert_eq!(bucket_index(u64::MAX), None);
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    // Unique metric names per test: the registries are process-global and
    // tests run concurrently. Tests only enable, never disable.

    #[test]
    fn counter_accumulates() {
        crate::set_enabled(true);
        counter_add("metrics_test.counter", 2);
        counter_add("metrics_test.counter", 3);
        let total = counters()
            .into_iter()
            .find(|(name, _)| name == "metrics_test.counter")
            .map(|(_, v)| v)
            .unwrap();
        assert_eq!(total, 5);
    }

    #[test]
    fn histogram_tracks_zero_and_overflow() {
        crate::set_enabled(true);
        histogram_record("metrics_test.hist", 0);
        histogram_record("metrics_test.hist", 7);
        histogram_record("metrics_test.hist", u64::MAX);
        let (_, hist) =
            histograms().into_iter().find(|(name, _)| name == "metrics_test.hist").unwrap();
        assert_eq!(hist.counts[0], 1, "zero lands in the zero bucket");
        assert_eq!(hist.counts[bucket_index(7).unwrap()], 1);
        assert_eq!(hist.overflow, 1, "huge value lands in overflow");
        assert_eq!(hist.count, 3);
        assert_eq!(hist.sum, u64::MAX, "sum saturates instead of wrapping");
    }
}
