//! Social-network analysis (the paper's case study 2, Fig. 11): label-
//! specific, configurable explanations on REDDIT-style discussion threads,
//! comparing GVEX with a baseline explainer.
//!
//! ```bash
//! cargo run --release --example social_threads
//! ```

use gvex::baselines::GnnExplainer;
use gvex::core::{ApproxGvex, Configuration, CoverageBound, Explainer};
use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, Split};
use gvex::metrics::{fidelity_minus, fidelity_plus, sparsity};

fn main() {
    let db = DatasetKind::RedditBinary.generate(Scale::Small, 11);
    let split = Split::paper(&db, 11);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, report) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 150, lr: 0.01, seed: 11, patience: 0, ..Default::default() },
    );
    println!("classifier test accuracy: {:.3}", report.test_accuracy);

    // Configurable coverage: the analyst wants detailed explanations for
    // question-answer threads (label 1) but only coarse ones for
    // online-discussion (label 0) — per-label bounds express exactly that.
    let config = Configuration::uniform(0.08, 0.25, 0.5, 0, 12)
        .with_bounds(vec![CoverageBound::new(0, 4), CoverageBound::new(2, 12)]);
    let gvex = ApproxGvex::new(config);
    let baseline = GnnExplainer { epochs: 40, ..Default::default() };

    println!("\nper-thread explanations (GVEX vs GNNExplainer):");
    println!(
        "{:>6} {:<18} {:>6} {:>8} {:>8} {:>9}",
        "thread", "class", "nodes", "F+", "F-", "sparsity"
    );
    for &gi in split.test.iter().take(6) {
        let g = db.graph(gi);
        let label = model.predict(g);
        let budget = if label == 1 { 12 } else { 4 };
        for (name, expl) in [
            // `ApproxGvex` has an inherent `explain` over whole databases;
            // the per-graph form comes from the `Explainer` trait.
            ("GVEX", Explainer::explain(&gvex, &model, g, budget)),
            ("GNNExplainer", Explainer::explain(&baseline, &model, g, budget)),
        ] {
            println!(
                "{gi:>6} {:<18} {:>6} {:>8.3} {:>8.3} {:>9.3}",
                format!("{}/{name}", db.class_names[label]),
                expl.len(),
                fidelity_plus(&model, g, &expl),
                fidelity_minus(&model, g, &expl),
                sparsity(g, &expl),
            );
        }
    }

    // Label-specific views: star hubs vs biclique fragments.
    let views = gvex.explain(&model, &db, &[0, 1]);
    for view in &views.views {
        let max_deg = view
            .patterns
            .iter()
            .flat_map(|p| (0..p.num_nodes()).map(|v| p.degree(v)))
            .max()
            .unwrap_or(0);
        println!(
            "\nlabel '{}': {} patterns (max pattern degree {}), compression {:.1}%",
            db.class_names[view.label],
            view.patterns.len(),
            max_deg,
            view.compression() * 100.0
        );
    }
}
