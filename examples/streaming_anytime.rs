//! Anytime streaming explanation (§5): process a node stream, interrupt it
//! midway, and inspect the explanation view maintained so far — the
//! workload StreamGVEX exists for.
//!
//! ```bash
//! cargo run --release --example streaming_anytime
//! ```

use gvex::core::stream::GraphStream;
use gvex::core::Configuration;
use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, Split};

fn main() {
    let db = DatasetKind::Enzymes.generate(Scale::Small, 5);
    let split = Split::paper(&db, 5);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, report) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 200, lr: 0.01, seed: 5, patience: 0, ..Default::default() },
    );
    println!("classifier test accuracy: {:.3}", report.test_accuracy);

    let gi = split.test[0];
    let g = db.graph(gi);
    println!("\nstreaming the {} nodes of test graph #{gi}...", g.num_nodes());

    let mut stream = GraphStream::new(&model, g, gi, Configuration::paper_mut(8));

    // Process the stream; after every quarter, peek at the anytime view.
    let n = g.num_nodes();
    for (i, v) in (0..n).enumerate() {
        stream.arrive(v);
        if (i + 1) % n.div_ceil(4) == 0 || i + 1 == n {
            println!(
                "  after {:>3}/{} arrivals: |V_S| = {}, |P_c| = {}, anytime f = {:.3}",
                i + 1,
                n,
                stream.current_nodes().len(),
                stream.current_patterns().len(),
                stream.current_score(),
            );
        }
    }

    match stream.finish() {
        Some((sub, patterns)) => {
            println!(
                "\nfinal explanation: {} nodes, consistent={}, counterfactual={}, {} patterns",
                sub.len(),
                sub.consistent,
                sub.counterfactual,
                patterns.len()
            );
        }
        None => println!("\nno explanation satisfying the coverage bound"),
    }
}
