//! Quickstart: generate data, train a GCN, produce an explanation view.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use gvex::core::{Configuration, ExplainSession, GreedyStrategy};
use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, Split};

fn main() {
    // 1. A graph database: the MUTAGENICITY stand-in (molecules labeled
    //    mutagen / nonmutagen by planted toxicophores).
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 42);
    println!("database: {} graphs, {} classes", db.len(), db.num_classes());

    // 2. Train the paper's classifier (3-layer GCN + max-pool + FC).
    let split = Split::paper(&db, 42);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, report) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 120, lr: 0.01, seed: 42, patience: 0, ..Default::default() },
    );
    println!("classifier test accuracy: {:.3}", report.test_accuracy);

    // 3. Ask GVEX "why are graphs classified as mutagens?" — an explanation
    //    view for class label 1 with the paper's configuration
    //    (θ, r, γ) = (0.08, 0.25, 0.5) and coverage bound [0, 10].
    //    One session owns the forward-trace cache and influence memo;
    //    plugging in `GreedyStrategy` runs ApproxGVEX (`StreamStrategy`
    //    would run StreamGVEX against the same shared state).
    let session = ExplainSession::new(&model, Configuration::paper_mut(10))
        .expect("paper configuration is valid");
    let views = session.explain(&GreedyStrategy, &db, &[1]);
    let view = &views.views[0];

    println!("\nexplanation view for label 'mutagen':");
    println!("  {} explanation subgraphs", view.subgraphs.len());
    println!("  {} summarizing patterns", view.patterns.len());
    println!("  compression: {:.1}%", view.compression() * 100.0);
    println!("  edge loss:   {:.2}%", view.edge_loss * 100.0);
    println!("  explainability f = {:.3}", view.explainability);

    // 4. The patterns are queryable structures: print them.
    for (i, p) in view.patterns.iter().enumerate() {
        let edges: Vec<String> = p
            .edges()
            .map(|(u, v, _)| {
                format!(
                    "{}-{}",
                    db.node_types.name(p.node_type(u)),
                    db.node_types.name(p.node_type(v))
                )
            })
            .collect();
        if edges.is_empty() {
            println!("  P{i}: single atom {}", db.node_types.name(p.node_type(0)));
        } else {
            println!("  P{i}: {}", edges.join(", "));
        }
    }
}
