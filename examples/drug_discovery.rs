//! Drug-discovery scenario (the paper's Example 1.1 / Fig. 1): explain why a
//! GNN classifies specific compounds as mutagens, verify the counterfactual
//! property, and *query* the resulting view — "which toxicophores occur in
//! mutagens?".
//!
//! ```bash
//! cargo run --release --example drug_discovery
//! ```

use gvex::core::{everify, ApproxGvex, Configuration};
use gvex::datasets::molecules::no2_pattern;
use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, Split};
use gvex::iso::{matches, MatchOptions};

fn main() {
    let db = DatasetKind::Mutagenicity.generate(Scale::Bench, 7);
    let split = Split::paper(&db, 7);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, report) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 150, lr: 0.01, seed: 7, patience: 0, ..Default::default() },
    );
    println!("classifier test accuracy: {:.3}", report.test_accuracy);

    let gvex = ApproxGvex::new(Configuration::paper_mut(10));

    // A medical analyst asks "why are these two compounds mutagens?"
    let mutagens: Vec<usize> =
        split.test.iter().copied().filter(|&gi| model.predict(db.graph(gi)) == 1).take(2).collect();

    for &gi in &mutagens {
        let g = db.graph(gi);
        let sub = gvex.explain_graph(&model, g, gi).expect("explanation exists");
        println!(
            "\ncompound #{gi}: {} atoms; explanation keeps {} atoms: {:?}",
            g.num_nodes(),
            sub.len(),
            sub.nodes.iter().map(|&v| db.node_types.name(g.node_type(v))).collect::<Vec<_>>()
        );
        // The paper's two defining properties of an explanation subgraph:
        let verdict = everify(&model, g, &sub.nodes);
        println!("  consistent (M(Gs) = mutagen):        {}", verdict.consistent);
        println!("  counterfactual (M(G\\Gs) != mutagen): {}", verdict.counterfactual);
    }

    // Build the full view for the mutagen class and query it.
    let view = {
        let assigned: Vec<usize> = db.graphs().iter().map(|g| model.predict(g)).collect();
        let groups = db.label_groups(&assigned);
        let test_mutagens: Vec<usize> =
            split.test.iter().copied().filter(|gi| groups.group(1).contains(gi)).collect();
        gvex.explain_label_group(&model, &db, 1, &test_mutagens)
    };

    // Query 1: "which toxicophores occur in mutagens?" — scan the pattern
    // tier for the known NO2 toxicophore.
    let no2 = no2_pattern();
    let opts = MatchOptions { induced: false, max_embeddings: 100 };
    let hits = view
        .patterns
        .iter()
        .filter(|p| matches(&no2, *p, opts) || gvex::iso::are_isomorphic(p, &no2))
        .count();
    println!("\nquery: which patterns contain the NO2 toxicophore? -> {hits} pattern(s)");

    // Query 2: "which compounds match pattern P0?" — view-based access.
    if let Some(p0) = view.patterns.first() {
        let matched: Vec<usize> = view
            .subgraphs
            .iter()
            .filter(|s| matches(p0, &s.subgraph, MatchOptions::default()))
            .map(|s| s.graph_index)
            .collect();
        println!("query: which explanation subgraphs match P0? -> {matched:?}");
    }
}
