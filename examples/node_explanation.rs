//! Node-classification explanation (Table 1's "NC" task): train a node
//! classifier on a co-purchase-style community graph and explain individual
//! node predictions with node-level GVEX views.
//!
//! ```bash
//! cargo run --release --example node_explanation
//! ```

use gvex::core::{explain_node, Configuration};
use gvex::gnn::{train_node_classifier, GcnConfig, NodeTrainOptions};
use gvex::graph::Graph;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // A product co-purchase graph with three categories: dense communities,
    // sparse cross-links; the node's category is its label.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let communities = 3usize;
    let size = 20usize;
    let mut b = Graph::builder(false);
    let mut labels = Vec::new();
    for c in 0..communities {
        for _ in 0..size {
            let mut f = vec![0.0; communities];
            f[c] = 1.0;
            f[(c + 1) % communities] = rng.gen_range(0.0..0.3); // noisy
            b.add_node(c as u32, &f);
            labels.push(c);
        }
    }
    let n = communities * size;
    for v in 0..n {
        let c = v / size;
        for _ in 0..3 {
            let w = c * size + rng.gen_range(0..size);
            if w != v {
                b.add_edge(v, w, 0);
            }
        }
        if rng.gen_bool(0.08) {
            let w = rng.gen_range(0..n);
            if w != v {
                b.add_edge(v, w, 0);
            }
        }
    }
    let g = b.build();

    let cfg = GcnConfig { input_dim: communities, hidden: 16, layers: 3, num_classes: communities };
    let train_nodes: Vec<usize> = (0..n).filter(|v| v % 2 == 0).collect();
    let (model, acc) = train_node_classifier(
        &g,
        &labels,
        &train_nodes,
        cfg,
        NodeTrainOptions { epochs: 200, lr: 0.02, seed: 9 },
    );
    println!("node classifier training accuracy: {acc:.3}");
    let test_nodes: Vec<usize> = (0..n).filter(|v| v % 2 == 1).collect();
    println!(
        "held-out accuracy: {:.3}",
        gvex::gnn::node_accuracy(&model, &g, &labels, &test_nodes)
    );

    // Explain a few held-out nodes: why does the model place product #v in
    // its category?
    let gvex_cfg = Configuration::paper_mut(8);
    for &v in test_nodes.iter().take(4) {
        match explain_node(&model, &g, v, &gvex_cfg) {
            Some(view) => {
                println!(
                    "\nnode {v} (predicted category {}): explanation keeps {} of its \
                     receptive field, consistent={}, counterfactual={}, {} patterns",
                    view.label,
                    view.nodes.len(),
                    view.consistent,
                    view.counterfactual,
                    view.patterns.len()
                );
                let same_community =
                    view.nodes.iter().filter(|&&u| labels[u] == view.label).count();
                println!(
                    "  {} / {} explanation nodes come from the predicted community",
                    same_community,
                    view.nodes.len()
                );
            }
            None => println!("node {v}: no explanation under the coverage bound"),
        }
    }
}
