//! StreamGVEX vs ApproxGVEX: the streaming algorithm's anytime behavior and
//! its quality relative to the batch algorithm (Theorem 5.1's ¼ vs
//! Theorem 4.1's ½ approximation — in practice the paper reports "minor
//! quality gaps").

use gvex::core::stream::GraphStream;
use gvex::core::{ApproxGvex, Configuration, StreamGvex};
use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, Split};
use gvex::graph::GraphDatabase;

fn trained() -> (GraphDatabase, gvex::gnn::GcnModel, Split) {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 7);
    let split = Split::paper(&db, 7);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let opts = TrainOptions { epochs: 120, lr: 0.01, seed: 7, patience: 0, ..Default::default() };
    let (model, _) = train(&db, cfg, &split, opts);
    (db, model, split)
}

#[test]
fn stream_explainability_within_factor_of_batch() {
    let (db, model, split) = trained();
    let cfg = Configuration::paper_mut(8);
    let ag = ApproxGvex::new(cfg.clone());
    let sg = StreamGvex::new(cfg);
    let mut batch_total = 0.0;
    let mut stream_total = 0.0;
    let mut explained = 0;
    for &gi in &split.test {
        let g = db.graph(gi);
        if let (Some(b), Some((s, _))) =
            (ag.explain_graph(&model, g, gi), sg.explain_graph_stream(&model, g, gi, None))
        {
            batch_total += b.explainability;
            stream_total += s.explainability;
            explained += 1;
        }
    }
    assert!(explained > 0, "no graph explained by both algorithms");
    // streaming is guaranteed ≥ ¼-approx; relative to the batch greedy it
    // should stay within a constant factor (and usually much closer)
    assert!(
        stream_total >= 0.25 * batch_total,
        "stream {stream_total} too far below batch {batch_total}"
    );
}

#[test]
fn anytime_score_is_monotone_over_the_stream() {
    let (db, model, split) = trained();
    let gi = split.test[0];
    let g = db.graph(gi);
    let mut stream = GraphStream::new(&model, g, gi, Configuration::paper_mut(8));
    let mut last = 0.0_f64;
    for v in 0..g.num_nodes() {
        stream.arrive(v);
        let score = stream.current_score();
        assert!(score >= last - 1e-9, "anytime score regressed at node {v}: {last} -> {score}");
        last = score;
    }
}

#[test]
fn prefix_of_stream_yields_valid_partial_view() {
    let (db, model, split) = trained();
    let gi = split.test[0];
    let g = db.graph(gi);
    let mut stream = GraphStream::new(&model, g, gi, Configuration::paper_mut(8));
    // process only half the stream
    for v in 0..g.num_nodes() / 2 {
        stream.arrive(v);
    }
    let nodes = stream.current_nodes().to_vec();
    assert!(nodes.len() <= 8);
    // all selected nodes must have arrived in the prefix
    assert!(nodes.iter().all(|&v| v < g.num_nodes() / 2));
}

#[test]
fn stream_and_batch_bound_compliance_across_testset() {
    let (db, model, split) = trained();
    let cfg = Configuration::paper_mut(6);
    let ag = ApproxGvex::new(cfg.clone());
    let sg = StreamGvex::new(cfg);
    for &gi in &split.test {
        let g = db.graph(gi);
        if let Some(b) = ag.explain_graph(&model, g, gi) {
            assert!(b.len() <= 6 && !b.is_empty());
        }
        if let Some((s, _)) = sg.explain_graph_stream(&model, g, gi, None) {
            assert!(s.len() <= 6 && !s.is_empty());
        }
    }
}
