//! Thread-count determinism of the parallel explain pipeline.
//!
//! The rayon fan-out across graphs, labels, and Jacobian seed blocks is
//! structured so every output has exactly one writer with a fixed
//! accumulation order. These tests pin the consequence: the explanation
//! views (and the realized influence matrix underneath them) are **bitwise
//! identical** whether the pipeline runs on 1 thread or 4.

use gvex::core::{explain_database, Configuration};
use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, GcnModel, Split};
use gvex::graph::{Graph, GraphDatabase};
use gvex::store::{write_store, BuildInput, Store};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn motif_graph(chain: usize) -> Graph {
    let mut b = Graph::builder(false);
    for _ in 0..chain {
        b.add_node(0, &[1.0, 0.0, 0.0]);
    }
    let m1 = b.add_node(1, &[0.0, 1.0, 0.0]);
    let m2 = b.add_node(2, &[0.0, 0.0, 1.0]);
    for v in 1..chain {
        b.add_edge(v - 1, v, 0);
    }
    b.add_edge(chain - 1, m1, 0);
    b.add_edge(m1, m2, 0);
    b.build()
}

fn plain_graph(chain: usize) -> Graph {
    let mut b = Graph::builder(false);
    for _ in 0..chain {
        b.add_node(0, &[1.0, 0.0, 0.0]);
    }
    for v in 1..chain {
        b.add_edge(v - 1, v, 0);
    }
    b.build()
}

fn toy_database() -> GraphDatabase {
    let mut db = GraphDatabase::new(vec!["plain".into(), "motif".into()]);
    for i in 0..6 {
        db.push(plain_graph(5 + i % 3), 0);
        db.push(motif_graph(4 + i % 3), 1);
    }
    db
}

#[test]
fn explain_database_identical_across_thread_counts() {
    let db = toy_database();
    let split =
        Split { train: (0..db.len()).collect(), val: (0..db.len()).collect(), test: vec![] };
    let gcfg = GcnConfig { input_dim: 3, hidden: 8, layers: 2, num_classes: 2 };
    let opts = TrainOptions { epochs: 40, lr: 0.01, seed: 1, patience: 0, ..Default::default() };
    let (model, _) = train(&db, gcfg, &split, opts);
    let labels = vec![0usize, 1];
    let cfg = Configuration::uniform(0.05, 0.3, 0.5, 0, 4);

    let serial = explain_database(&model, &db, &labels, &cfg, 1);
    let parallel = explain_database(&model, &db, &labels, &cfg, 4);
    let serial_json = serde_json::to_string(&serial).expect("serializable views");
    let parallel_json = serde_json::to_string(&parallel).expect("serializable views");
    assert_eq!(serial_json, parallel_json, "explanation views depend on thread count");
}

/// Observation must never perturb the computation it measures: with spans,
/// counters, and histograms recording, the explanation views stay bitwise
/// identical to the unobserved baseline at both thread counts.
#[test]
fn explain_database_identical_with_observation_enabled() {
    let db = toy_database();
    let split =
        Split { train: (0..db.len()).collect(), val: (0..db.len()).collect(), test: vec![] };
    let gcfg = GcnConfig { input_dim: 3, hidden: 8, layers: 2, num_classes: 2 };
    let opts = TrainOptions { epochs: 40, lr: 0.01, seed: 1, patience: 0, ..Default::default() };
    let (model, _) = train(&db, gcfg, &split, opts);
    let labels = vec![0usize, 1];
    let cfg = Configuration::uniform(0.05, 0.3, 0.5, 0, 4);

    let baseline = serde_json::to_string(&explain_database(&model, &db, &labels, &cfg, 1))
        .expect("serializable views");

    // Only ever *enable* — the toggle is process-global and other tests in
    // this binary run concurrently with observation assumed off-or-on. The
    // trace ring records alongside: every span drop appends a begin/end
    // pair, and that too must leave the views untouched.
    gvex::obs::set_enabled(true);
    gvex::obs::trace::force_active(true);
    let observed_1 = serde_json::to_string(&explain_database(&model, &db, &labels, &cfg, 1))
        .expect("serializable views");
    let observed_4 = serde_json::to_string(&explain_database(&model, &db, &labels, &cfg, 4))
        .expect("serializable views");

    assert_eq!(baseline, observed_1, "observation perturbed the serial pipeline");
    assert_eq!(baseline, observed_4, "observation perturbed the parallel pipeline");
    if gvex::obs::enabled() {
        // With the `obs` feature compiled in, the run must also have
        // recorded the pipeline. (No open-span assertion here: sibling
        // tests run concurrently and may legitimately hold spans open.)
        let spans = gvex::obs::span::snapshot();
        assert!(
            spans.iter().any(|s| s.path.starts_with("explain_db")),
            "no explain_db span recorded: {spans:?}"
        );
        // Both drivers ran inside a `session.explain` request scope, so the
        // request registry attributes the work (counts, spans, counters).
        let requests = gvex::obs::context::snapshot();
        let explain = requests
            .iter()
            .find(|r| r.name == "session.explain")
            .expect("session.explain request recorded");
        assert!(explain.count >= 2, "both observed runs counted: {}", explain.count);
        assert!(explain.total_ns > 0);
        assert!(
            explain.spans.iter().any(|(path, _, _)| path.starts_with("explain_db")),
            "explain_db attributed to the request: {:?}",
            explain.spans
        );
        // The ring recorded the observed runs. (The strict matched-pair
        // assertion lives in `tests/obs_trace.rs` — its own process — and
        // in ci.sh's flushed-file check: here sibling tests may have pairs
        // mid-write while we snapshot, so only coarse balance is stable.)
        let events = gvex::obs::trace::events();
        assert!(!events.is_empty(), "trace ring recorded the observed runs");
        let begins = events.iter().filter(|e| e.begin).count() as i64;
        let ends = events.len() as i64 - begins;
        assert!((begins - ends).abs() <= 64, "ring wildly unbalanced: {begins} B vs {ends} E");
        assert_eq!(gvex::obs::trace::dropped() % 2, 0, "drops are counted in pairs");
    }
}

/// The batched engine under observation: mini-batch training and batched
/// database classification must be bitwise identical with spans, counters,
/// and histograms (including the per-epoch wall-clock histogram) recording.
#[test]
fn batched_execution_identical_with_observation_enabled() {
    let db = toy_database();
    let split =
        Split { train: (0..db.len()).collect(), val: (0..db.len()).collect(), test: vec![] };
    let gcfg = GcnConfig { input_dim: 3, hidden: 8, layers: 2, num_classes: 2 };
    let opts = TrainOptions { epochs: 40, lr: 0.01, seed: 1, patience: 0, batch_size: 4 };

    let (baseline_model, baseline_report) = train(&db, gcfg, &split, opts);
    let baseline_labels = baseline_model.classify_database(&db, 0);

    // Only ever *enable* — the toggle is process-global (see above).
    gvex::obs::set_enabled(true);
    let (observed_model, observed_report) = train(&db, gcfg, &split, opts);
    let observed_labels = observed_model.classify_database(&db, 0);

    assert_eq!(
        baseline_report.epoch_loss, observed_report.epoch_loss,
        "observation perturbed mini-batch training"
    );
    assert_eq!(baseline_labels, observed_labels, "observation perturbed batched inference");
    // chunk size must not change labels either, observed or not
    assert_eq!(observed_labels, observed_model.classify_database(&db, 3));
    if gvex::obs::enabled() {
        let counters = gvex::obs::metrics::counters();
        for name in ["gnn.batch.graphs", "gnn.batch.nodes"] {
            assert!(
                counters.iter().any(|(n, v)| n == name && *v > 0),
                "missing batch counter {name}: {counters:?}"
            );
        }
        assert!(
            gvex::obs::metrics::histograms().iter().any(|(n, _)| n == "gnn.train.epoch_ms"),
            "missing per-epoch wall-clock histogram"
        );
    }
}

/// Round-trip parity through the `.gvex` store: for every synthetic
/// dataset, a database + model written to disk and memory-mapped back must
/// reproduce the in-memory pipeline **bitwise** — the stored views come
/// back byte-identical, re-running the explainer from the store matches at
/// 1 and 4 threads, and every classification agrees both through the
/// materialized database and zero-copy off the mapped columns.
#[test]
fn store_served_explanations_identical_to_in_memory() {
    for kind in DatasetKind::all() {
        let db = kind.generate(Scale::Small, 9);
        let split = Split::paper(&db, 9);
        let gcfg = GcnConfig {
            input_dim: db.feature_dim().max(1),
            hidden: 8,
            layers: 2,
            num_classes: db.num_classes(),
        };
        let opts = TrainOptions { epochs: 8, lr: 0.01, seed: 9, patience: 0, ..Default::default() };
        let (model, _) = train(&db, gcfg, &split, opts);
        let labels: Vec<usize> = (0..db.num_classes()).collect();
        let cfg = Configuration::uniform(0.05, 0.3, 0.5, 0, 3);

        let mem_json = serde_json::to_string(&explain_database(&model, &db, &labels, &cfg, 1))
            .expect("serializable views");

        let path = std::env::temp_dir().join(format!(
            "gvex-det-{}-{}.gvex",
            kind.short_name(),
            std::process::id()
        ));
        let input = BuildInput {
            db: &db,
            model: &model,
            views_json: Some(&mem_json),
            dataset: kind.short_name(),
            seed: 9,
            mining: None,
            epoch: 0,
        };
        write_store(&path, &input).expect("store writes");
        let store = Store::open(&path).expect("store reopens");
        let sdb = store.database();
        let smodel = store.model();

        assert_eq!(
            store.views_json(),
            Some(mem_json.as_str()),
            "{}: stored views drifted",
            kind.short_name()
        );
        for threads in [1usize, 4] {
            let served =
                serde_json::to_string(&explain_database(&smodel, &sdb, &labels, &cfg, threads))
                    .expect("serializable views");
            assert_eq!(
                mem_json,
                served,
                "{} @ {threads} threads: store-served explanations diverged",
                kind.short_name()
            );
        }

        let mem_labels = model.classify_database(&db, 0);
        assert_eq!(
            mem_labels,
            smodel.classify_database(&sdb, 0),
            "{}: classification diverged through the store",
            kind.short_name()
        );
        for i in 0..db.len() {
            assert_eq!(
                model.predict(db.graph(i)),
                smodel.predict(store.graph(i)),
                "{}: graph {i} prediction diverged zero-copy",
                kind.short_name()
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn realized_jacobian_identical_across_thread_counts() {
    let g = motif_graph(6);
    let model = GcnModel::new(
        GcnConfig { input_dim: 3, hidden: 8, layers: 3, num_classes: 2 },
        &mut ChaCha8Rng::seed_from_u64(11),
    );
    let narrow = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let wide = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let serial = narrow.install(|| gvex::influence::realized(&model, &g));
    let parallel = wide.install(|| gvex::influence::realized(&model, &g));
    assert_eq!(serial, parallel, "realized influence matrix depends on thread count");
}
