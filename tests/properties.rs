//! Property-based tests (proptest) over the core data structures and the
//! paper's stated invariants.

use gvex::graph::{Graph, GraphBuilder};
use gvex::influence::{BitSet, InfluenceAnalysis};
use gvex::iso::{enumerate, for_each_embedding, MatchOptions};
use gvex::linalg::Matrix;
use proptest::prelude::*;
use std::collections::HashSet;
use std::ops::ControlFlow;

/// Strategy: a random undirected typed graph with ≤ `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0u32..3, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..2 * n);
        (types, edges).prop_map(|(types, edges)| {
            let mut b = GraphBuilder::new(false);
            for &t in &types {
                b.add_node(t, &[1.0]);
            }
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v, 0);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Induced subgraph + complement partition the node set, and neither
    /// invents edges.
    #[test]
    fn induced_and_complement_partition(g in arb_graph(12), sel in proptest::collection::vec(0usize..12, 0..6)) {
        let sel: Vec<usize> = sel.into_iter().filter(|&v| v < g.num_nodes()).collect();
        let sub = g.induced_subgraph(&sel);
        let rest = g.remove_nodes(&sel);
        prop_assert_eq!(sub.graph.num_nodes() + rest.graph.num_nodes(), g.num_nodes());
        // every subgraph edge maps to a parent edge
        for (u, v, t) in sub.graph.edges() {
            let (pu, pv) = (sub.to_parent(u), sub.to_parent(v));
            prop_assert_eq!(g.edge_type(pu, pv), Some(t));
        }
        // edge conservation: edges(sub) + edges(rest) + cut = edges(g)
        let cut = g
            .edges()
            .filter(|&(u, v, _)| {
                let u_in = sub.from_parent(u).is_some();
                let v_in = sub.from_parent(v).is_some();
                u_in != v_in
            })
            .count();
        prop_assert_eq!(sub.graph.num_edges() + rest.graph.num_edges() + cut, g.num_edges());
    }

    /// Connected components partition V and each is internally connected.
    #[test]
    fn components_partition_and_connect(g in arb_graph(14)) {
        let comps = g.connected_components();
        let mut seen = HashSet::new();
        for c in &comps {
            for &v in c {
                prop_assert!(seen.insert(v), "node {} in two components", v);
            }
            prop_assert!(g.induced_subgraph(c).graph.is_connected());
        }
        prop_assert_eq!(seen.len(), g.num_nodes());
    }

    /// Every VF2 embedding is a valid injective, type- and edge-preserving
    /// mapping; in induced mode, non-edges are preserved too.
    #[test]
    fn vf2_embeddings_are_valid(pattern in arb_graph(4), target in arb_graph(10)) {
        let opts = MatchOptions { induced: true, max_embeddings: 200 };
        for_each_embedding(&pattern, &target, opts, |map| {
            // injective
            let uniq: HashSet<usize> = map.iter().copied().collect();
            assert_eq!(uniq.len(), map.len());
            for p in 0..pattern.num_nodes() {
                assert_eq!(pattern.node_type(p), target.node_type(map[p]));
                for q in 0..pattern.num_nodes() {
                    if p == q { continue; }
                    // induced: edge iff edge
                    assert_eq!(
                        pattern.has_edge(p, q),
                        target.has_edge(map[p], map[q]),
                        "induced condition violated"
                    );
                }
            }
            ControlFlow::Continue(())
        });
    }

    /// Non-induced embeddings are a superset of induced ones.
    #[test]
    fn induced_embeddings_subset_of_monomorphisms(pattern in arb_graph(3), target in arb_graph(8)) {
        let ind = enumerate(&pattern, &target, MatchOptions { induced: true, max_embeddings: 500 });
        let mono: HashSet<Vec<usize>> = enumerate(
            &pattern,
            &target,
            MatchOptions { induced: false, max_embeddings: 5000 },
        ).into_iter().collect();
        for e in &ind {
            prop_assert!(mono.contains(e), "induced embedding missing from monomorphism set");
        }
    }

    /// BitSet behaves like a HashSet model.
    #[test]
    fn bitset_matches_hashset_model(ops in proptest::collection::vec((0usize..100, any::<bool>()), 0..64)) {
        let mut bs = BitSet::new(100);
        let mut hs: HashSet<usize> = HashSet::new();
        for (v, insert) in ops {
            if insert {
                bs.insert(v);
                hs.insert(v);
            } else {
                bs.remove(v);
                hs.remove(&v);
            }
        }
        prop_assert_eq!(bs.count(), hs.len());
        let mut collected: Vec<usize> = bs.iter().collect();
        collected.sort_unstable();
        let mut model: Vec<usize> = hs.into_iter().collect();
        model.sort_unstable();
        prop_assert_eq!(collected, model);
    }

    /// The explainability score is monotone and submodular on random
    /// influence structures (Lemma 3.3), exercised through the public API.
    #[test]
    fn explainability_monotone_submodular(
        n in 3usize..10,
        entries in proptest::collection::vec(0.0f32..1.0, 100),
        seed_nodes in proptest::collection::vec(0usize..10, 0..4),
        extra in 0usize..10,
    ) {
        // random row-stochastic influence matrix + random embeddings
        let mut i2 = Matrix::zeros(n, n);
        for v in 0..n {
            let mut sum = 0.0;
            for u in 0..n {
                let x = entries[(v * n + u) % entries.len()] + 1e-3;
                i2[(v, u)] = x;
                sum += x;
            }
            for u in 0..n {
                i2[(v, u)] /= sum;
            }
        }
        let mut emb = Matrix::zeros(n, 4);
        for v in 0..n {
            for d in 0..4 {
                emb[(v, d)] = entries[(v * 4 + d + 31) % entries.len()];
            }
        }
        let a = InfluenceAnalysis::from_parts(&i2, &emb, 0.15, 0.3, 0.5);

        let small: Vec<usize> = seed_nodes.iter().map(|&v| v % n).take(1).collect();
        let large: Vec<usize> = seed_nodes.iter().map(|&v| v % n).collect();
        let mut large_all = large.clone();
        large_all.extend(small.iter().copied());
        let u = extra % n;

        // monotone: score(small ⊆ large) ≤ score(large ∪ small)
        prop_assert!(a.score_of(&small) <= a.score_of(&large_all) + 1e-9);

        // submodular: gain at a subset ≥ gain at a superset
        let gain_small = a.score_of(&[small.clone(), vec![u]].concat()) - a.score_of(&small);
        let gain_large = a.score_of(&[large_all.clone(), vec![u]].concat()) - a.score_of(&large_all);
        prop_assert!(gain_small + 1e-9 >= gain_large,
            "submodularity violated: {} < {}", gain_small, gain_large);
    }

    /// Streaming influence, after every node has arrived in an arbitrary
    /// order, scores sets identically to the batch analysis (Expected mode;
    /// the streaming k-step rows and the dense Ã^k rows are the same math).
    #[test]
    fn streaming_influence_matches_batch(
        g in arb_graph(9),
        perm_seed in any::<u64>(),
        set in proptest::collection::vec(0usize..9, 1..4),
    ) {
        use gvex::gnn::{GcnConfig, GcnModel};
        use gvex::influence::{InfluenceAnalysis, InfluenceMode};
        use gvex::influence::analysis::StreamingInfluence;
        use rand::SeedableRng;
        use rand::seq::SliceRandom;

        let n = g.num_nodes();
        let model = GcnModel::new(
            GcnConfig { input_dim: 1, hidden: 4, layers: 2, num_classes: 2 },
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(0),
        );
        let batch = InfluenceAnalysis::new(
            &model, &g, 0.1, 0.3, 0.5, InfluenceMode::Expected,
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(0),
        );
        let mut stream = StreamingInfluence::new(&model, &g, 0.1, 0.3, 0.5);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(perm_seed));
        for v in order {
            stream.arrive(v);
        }
        let set: Vec<usize> = set.into_iter().map(|v| v % n).collect();
        // influenced-set counts must agree exactly; the diversity term may
        // differ only through the sampled distance normalizer, so compare
        // the influence component via gamma = 0 rebuilds.
        let b0 = InfluenceAnalysis::new(
            &model, &g, 0.1, 0.3, 0.0, InfluenceMode::Expected,
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(0),
        );
        let mut s0 = StreamingInfluence::new(&model, &g, 0.1, 0.3, 0.0);
        for v in 0..n {
            s0.arrive(v);
        }
        prop_assert!((b0.score_of(&set) - s0.score_of(&set)).abs() < 1e-9,
            "influence component differs: batch {} vs stream {}",
            b0.score_of(&set), s0.score_of(&set));
        let _ = batch;
    }

    /// The tiled/FMA matmul kernel (with its sparsity-census dispatch) must
    /// agree with the retained naive reference kernel to 1e-5 on random
    /// shapes and densities — including all-zero rows and one-hot-like rows
    /// that trigger the row-skip and element-skip modes.
    #[test]
    fn tiled_matmul_matches_reference(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in any::<u64>(),
        density in 0.0f64..1.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut random = |rows: usize, cols: usize, dens: f64| {
            let data = (0..rows * cols)
                .map(|_| {
                    if rng.gen_range(0.0f64..1.0) < dens {
                        rng.gen_range(-1.0f32..1.0)
                    } else {
                        0.0
                    }
                })
                .collect();
            Matrix::from_vec(rows, cols, data)
        };
        let a = random(m, k, density);
        let b = random(k, n, 1.0);
        let tiled = a.matmul(&b);
        let naive = a.matmul_reference(&b);
        prop_assert_eq!(tiled.shape(), naive.shape());
        for (x, y) in tiled.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5, "kernel divergence: {} vs {}", x, y);
        }
    }

    /// The batched, hop-support-tracked realized Jacobian must agree with
    /// the seed-at-a-time reference propagation to 1e-5 on random graphs,
    /// feature dimensions, and layer counts.
    #[test]
    fn batched_realized_jacobian_matches_per_seed(
        g in arb_graph(10),
        d in 1usize..4,
        layers in 1usize..4,
        seed in any::<u64>(),
    ) {
        use gvex::gnn::{GcnConfig, GcnModel};
        use gvex::influence::{realized, realized_reference};
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        // re-pin the node features to d random dims (arb_graph builds 1-dim)
        let mut b = GraphBuilder::new(false);
        for v in 0..g.num_nodes() {
            let feats: Vec<f32> = (0..d).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            b.add_node(g.node_type(v), &feats);
        }
        for (u, v, t) in g.edges() {
            b.add_edge(u, v, t);
        }
        let g = b.build();
        let model = GcnModel::new(
            GcnConfig { input_dim: d, hidden: 5, layers, num_classes: 2 },
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(seed ^ 0x9e37),
        );
        let batched = realized(&model, &g);
        let per_seed = realized_reference(&model, &g);
        prop_assert_eq!(batched.shape(), per_seed.shape());
        for (x, y) in batched.as_slice().iter().zip(per_seed.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5, "Jacobian divergence: {} vs {}", x, y);
        }
    }

    /// Coverage by a pattern set only grows as patterns are added.
    #[test]
    fn coverage_monotone_in_pattern_set(target in arb_graph(8)) {
        use gvex::iso::coverage::covered_by_set;
        let mut b = GraphBuilder::new(false);
        b.add_node(0, &[]);
        let p0 = b.build();
        let mut b = GraphBuilder::new(false);
        b.add_node(1, &[]);
        let p1 = b.build();
        let opts = MatchOptions::default();
        let one = covered_by_set(std::slice::from_ref(&p0), &target, opts);
        let two = covered_by_set(&[p0, p1], &target, opts);
        prop_assert!(one.nodes.is_subset(&two.nodes));
    }
}
