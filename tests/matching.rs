//! Differential property tests for the matching engine overhaul: the
//! bitset-frontier VF2 must agree embedding-for-embedding with the retained
//! reference engine, and `PGen`'s canonical-code dedup must produce the same
//! candidates as the original pairwise-isomorphism scan.

use gvex::graph::{Graph, GraphBuilder};
use gvex::iso::{
    are_isomorphic, for_each_embedding_reference, for_each_embedding_with_index, MatchIndex,
    MatchOptions,
};
use gvex::mining::{pgen_with, DedupStrategy, MiningConfig};
use proptest::prelude::*;
use std::ops::ControlFlow;

/// Strategy: a random undirected typed graph with ≤ `max_n` nodes.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..=max_n).prop_flat_map(move |n| {
        let types = proptest::collection::vec(0u32..3, n);
        let edges = proptest::collection::vec((0..n, 0..n), 0..2 * n);
        (types, edges).prop_map(|(types, edges)| {
            let mut b = GraphBuilder::new(false);
            for &t in &types {
                b.add_node(t, &[1.0]);
            }
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v, 0);
                }
            }
            b.build()
        })
    })
}

/// All embeddings of `pattern` in `target` from the reference engine, in
/// emission order.
fn reference_embeddings(pattern: &Graph, target: &Graph, opts: MatchOptions) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for_each_embedding_reference(pattern, target, opts, |map| {
        out.push(map.to_vec());
        ControlFlow::Continue(())
    });
    out
}

/// All embeddings from the bitset engine against a freshly built index.
fn bitset_embeddings(pattern: &Graph, target: &Graph, opts: MatchOptions) -> Vec<Vec<usize>> {
    let index = MatchIndex::build(target);
    let mut out = Vec::new();
    for_each_embedding_with_index(pattern, target, &index, opts, |map| {
        out.push(map.to_vec());
        ControlFlow::Continue(())
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Induced matching: the bitset engine emits exactly the reference
    /// engine's embeddings, in the same order (the order identity the
    /// adaptive dispatch in `for_each_embedding` relies on).
    #[test]
    fn bitset_matches_reference_induced(pattern in arb_graph(4), target in arb_graph(12)) {
        let opts = MatchOptions { induced: true, max_embeddings: 5_000 };
        prop_assert_eq!(
            bitset_embeddings(&pattern, &target, opts),
            reference_embeddings(&pattern, &target, opts)
        );
    }

    /// Non-induced (monomorphism) matching agrees too: the frontier pruning
    /// must not assume absent pattern edges forbid target edges.
    #[test]
    fn bitset_matches_reference_non_induced(pattern in arb_graph(4), target in arb_graph(12)) {
        let opts = MatchOptions { induced: false, max_embeddings: 5_000 };
        prop_assert_eq!(
            bitset_embeddings(&pattern, &target, opts),
            reference_embeddings(&pattern, &target, opts)
        );
    }

    /// Truncation at `max_embeddings` cuts the same prefix from both
    /// engines — truncated searches are still deterministic and comparable.
    #[test]
    fn truncated_prefixes_agree(pattern in arb_graph(3), target in arb_graph(10), cap in 1usize..6) {
        let opts = MatchOptions { induced: false, max_embeddings: cap };
        let reference = reference_embeddings(&pattern, &target, opts);
        prop_assert!(reference.len() <= cap);
        prop_assert_eq!(bitset_embeddings(&pattern, &target, opts), reference);
    }

    /// `PGen` candidate lists are identical under canonical-code dedup and
    /// the original pairwise-isomorphism scan: same length, same order, same
    /// support and MDL score, isomorphic patterns position by position.
    #[test]
    fn pgen_dedup_strategies_agree(a in arb_graph(7), b in arb_graph(7)) {
        let cfg = MiningConfig { max_pattern_nodes: 4, ..MiningConfig::default() };
        let subgraphs = [&a, &b];
        let canonical = pgen_with(&subgraphs, &cfg, DedupStrategy::Canonical);
        let pairwise = pgen_with(&subgraphs, &cfg, DedupStrategy::Pairwise);
        prop_assert_eq!(canonical.len(), pairwise.len());
        for (c, p) in canonical.iter().zip(&pairwise) {
            prop_assert_eq!(c.support, p.support);
            prop_assert!((c.mdl_score - p.mdl_score).abs() < 1e-9);
            prop_assert!(
                are_isomorphic(&c.pattern, &p.pattern),
                "non-isomorphic candidates at the same rank"
            );
        }
    }
}
