//! End-to-end pipeline test: generate → train → explain → verify.
//!
//! This is the repository's "does the paper's loop actually close" test:
//! the views produced by ApproxGVEX must satisfy the graph-view (C1) and
//! coverage (C3) constraints of the view-verification problem, the planted
//! toxicophore must be recoverable, and the two-tier structure must
//! compress.

use gvex::core::{verify_view, ApproxGvex, Configuration};
use gvex::datasets::molecules::no2_pattern;
use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, Split};
use gvex::graph::GraphDatabase;
use gvex::iso::{matches, MatchOptions};

fn trained_mut() -> (GraphDatabase, gvex::gnn::GcnModel, Split) {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 42);
    let split = Split::paper(&db, 42);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let opts = TrainOptions { epochs: 120, lr: 0.01, seed: 42, patience: 0, ..Default::default() };
    let (model, _) = train(&db, cfg, &split, opts);
    (db, model, split)
}

#[test]
fn views_satisfy_c1_and_c3() {
    let (db, model, _) = trained_mut();
    let cfg = Configuration::paper_mut(10);
    let set = ApproxGvex::new(cfg.clone()).explain(&model, &db, &[0, 1]);
    assert_eq!(set.views.len(), 2);
    for view in &set.views {
        assert!(!view.subgraphs.is_empty(), "label {} got no subgraphs", view.label);
        let report = verify_view(&model, &db, view, &cfg);
        assert!(report.is_graph_view, "C1 violated for label {}", view.label);
        assert!(report.properly_covers, "C3 violated for label {}", view.label);
    }
}

#[test]
fn most_mutagen_subgraphs_are_consistent_and_counterfactual() {
    // Counterfactuality is only structurally achievable for the class whose
    // evidence can be *removed*: deleting atoms can destroy a toxicophore
    // (mutagen → nonmutagen) but cannot create one (nonmutagen stays
    // nonmutagen). The paper accordingly generates explanations "for one
    // label of user's interest" (§6.2) — here, the mutagen class.
    let (db, model, _) = trained_mut();
    let set = ApproxGvex::new(Configuration::paper_mut(10)).explain(&model, &db, &[1]);
    let view = &set.views[0];
    let total = view.subgraphs.len();
    let valid = view.subgraphs.iter().filter(|s| s.is_valid_explanation()).count();
    assert!(total > 0);
    assert!(
        valid * 2 >= total,
        "only {valid}/{total} mutagen subgraphs satisfy both §2.2 properties"
    );
    // the nonmutagen view must still be *consistent* on a majority
    let set0 = ApproxGvex::new(Configuration::paper_mut(10)).explain(&model, &db, &[0]);
    let view0 = &set0.views[0];
    let consistent = view0.subgraphs.iter().filter(|s| s.consistent).count();
    assert!(
        consistent * 2 >= view0.subgraphs.len(),
        "only {consistent}/{} nonmutagen subgraphs are consistent",
        view0.subgraphs.len()
    );
}

#[test]
fn mutagen_view_recovers_toxicophore() {
    let (db, model, _) = trained_mut();
    let set = ApproxGvex::new(Configuration::paper_mut(10)).explain(&model, &db, &[1]);
    let view = &set.views[0];
    let no2 = no2_pattern();
    let opts = MatchOptions { induced: false, max_embeddings: 100 };
    // the NO2 motif must appear either inside some explanation subgraph or
    // as (part of) a mined pattern
    let in_sub = view.subgraphs.iter().any(|s| matches(&no2, &s.subgraph, opts));
    let in_pat = view.patterns.iter().any(|p| matches(&no2, p, opts));
    assert!(in_sub || in_pat, "NO2 toxicophore not recovered by the mutagen view");
}

#[test]
fn two_tier_structure_compresses() {
    let (db, model, _) = trained_mut();
    let set = ApproxGvex::new(Configuration::paper_mut(10)).explain(&model, &db, &[0, 1]);
    for view in &set.views {
        assert!(
            view.compression() > 0.0,
            "patterns should be smaller than the subgraphs they summarize (label {})",
            view.label
        );
        assert!(view.edge_loss >= 0.0 && view.edge_loss <= 1.0);
    }
}

#[test]
fn objective_is_sum_of_view_explainabilities() {
    let (db, model, _) = trained_mut();
    let set = ApproxGvex::new(Configuration::paper_mut(8)).explain(&model, &db, &[0, 1]);
    let manual: f64 = set.views.iter().map(|v| v.explainability).sum();
    assert!((set.total_explainability() - manual).abs() < 1e-12);
    assert!(manual > 0.0);
}

#[test]
fn tighter_upper_bound_gives_smaller_subgraphs() {
    let (db, model, split) = trained_mut();
    let gi = split.test[0];
    let small = ApproxGvex::new(Configuration::paper_mut(4))
        .explain_graph(&model, db.graph(gi), gi)
        .map(|s| s.len())
        .unwrap_or(0);
    let large = ApproxGvex::new(Configuration::paper_mut(16))
        .explain_graph(&model, db.graph(gi), gi)
        .map(|s| s.len())
        .unwrap_or(0);
    assert!(small <= 4);
    assert!(large <= 16);
    assert!(small <= large);
}
