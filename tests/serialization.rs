//! Serialization round trips: the CLI's persistence paths (models and
//! views as JSON, databases as TU files) must preserve behavior, not just
//! structure.

use gvex::core::{index_views, ApproxGvex, Configuration, ExplanationViewSet};
use gvex::datasets::{read_tu_dataset, write_tu_dataset, DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, GcnModel, Split};
use gvex::graph::GraphDatabase;
use gvex::store::{crc::crc32, format::ENTRY_LEN, BuildInput, SectionId, Store, StoreError};
use gvex::store::{write_store, HEADER_LEN, MAGIC, VERSION};
use std::sync::OnceLock;

#[test]
fn model_json_round_trip_preserves_predictions() {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 21);
    let split = Split::paper(&db, 21);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, _) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 60, lr: 0.01, seed: 21, patience: 0, ..Default::default() },
    );
    let json = serde_json::to_string(&model).expect("model serializes");
    let back: GcnModel = serde_json::from_str(&json).expect("model parses");
    for g in db.graphs().iter().take(10) {
        assert_eq!(model.predict_proba(g), back.predict_proba(g));
    }
}

#[test]
fn views_json_round_trip_is_queryable() {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 22);
    let split = Split::paper(&db, 22);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, _) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 60, lr: 0.01, seed: 22, patience: 0, ..Default::default() },
    );
    let views = ApproxGvex::new(Configuration::paper_mut(8)).explain(&model, &db, &[1]);
    let json = serde_json::to_string(&views).expect("views serialize");
    let back: ExplanationViewSet = serde_json::from_str(&json).expect("views parse");

    assert_eq!(back.views.len(), views.views.len());
    assert_eq!(back.total_explainability(), views.total_explainability());
    // the deserialized views must be indexable and answer the same queries
    let idx_a = index_views(&views);
    let idx_b = index_views(&back);
    assert_eq!(idx_a.patterns().len(), idx_b.patterns().len());
    for pid in 0..idx_a.patterns().len() {
        assert_eq!(idx_a.graphs_matching(pid), idx_b.graphs_matching(pid));
    }
}

#[test]
fn tu_round_trip_preserves_classifier_behavior() {
    let db = DatasetKind::Pcqm4m.generate(Scale::Small, 23);
    let dir = std::env::temp_dir().join(format!("gvex-ser-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_tu_dataset(&db, &dir, "PCQ").expect("export");
    let back = read_tu_dataset(&dir, "PCQ").expect("import");

    // train on the original, predict identically on the round-tripped copy
    let split = Split::paper(&db, 23);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 8,
        layers: 2,
        num_classes: db.num_classes(),
    };
    let (model, _) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 40, lr: 0.01, seed: 23, patience: 0, ..Default::default() },
    );
    for (a, b) in db.graphs().iter().zip(back.graphs()).take(12) {
        assert_eq!(model.predict(a), model.predict(b));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// `.gvex` store: the binary container must fail *typed* on every kind of
// damage (no panics, no UB, no silently-wrong data) and round-trip bitwise
// when intact.
// ---------------------------------------------------------------------------

struct StoreFixture {
    /// A valid `.gvex` file, byte for byte.
    bytes: Vec<u8>,
    db: GraphDatabase,
    model: GcnModel,
}

/// Trains one small model and serializes it once for all store tests.
fn store_fixture() -> &'static StoreFixture {
    static FIXTURE: OnceLock<StoreFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = DatasetKind::Mutagenicity.generate(Scale::Small, 31);
        let split = Split::paper(&db, 31);
        let cfg = GcnConfig {
            input_dim: db.feature_dim(),
            hidden: 8,
            layers: 2,
            num_classes: db.num_classes(),
        };
        let (model, _) = train(
            &db,
            cfg,
            &split,
            TrainOptions { epochs: 12, lr: 0.01, seed: 31, patience: 0, ..Default::default() },
        );
        let path = std::env::temp_dir().join(format!("gvex-ser-store-{}.gvex", std::process::id()));
        let input = BuildInput {
            db: &db,
            model: &model,
            views_json: None,
            dataset: "MUT",
            seed: 31,
            mining: None,
            epoch: 0,
        };
        write_store(&path, &input).expect("store writes");
        let bytes = std::fs::read(&path).expect("store file reads back");
        let _ = std::fs::remove_file(&path);
        StoreFixture { bytes, db, model }
    })
}

/// Writes (possibly doctored) store bytes to a fresh temp file and opens it.
fn open_bytes(tag: &str, bytes: &[u8]) -> Result<Store, StoreError> {
    let path =
        std::env::temp_dir().join(format!("gvex-ser-store-{tag}-{}.gvex", std::process::id()));
    std::fs::write(&path, bytes).expect("doctored store writes");
    let out = Store::open(&path);
    let _ = std::fs::remove_file(&path);
    out
}

/// Decodes the section table of a valid store image:
/// `(id, offset_field_position, offset, len)` per section.
fn section_table(bytes: &[u8]) -> Vec<(u32, usize, u64, u64)> {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| {
            let at = HEADER_LEN + i * ENTRY_LEN;
            let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap());
            (id, at + 8, offset, len)
        })
        .collect()
}

/// Recomputes the table CRC (header bytes 24..28) after doctoring an entry.
fn repatch_table_crc(bytes: &mut [u8]) {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let table = &bytes[HEADER_LEN..HEADER_LEN + count * ENTRY_LEN];
    let crc = crc32(table);
    bytes[24..28].copy_from_slice(&crc.to_le_bytes());
}

#[test]
fn store_round_trip_preserves_predictions_and_labels() {
    let fx = store_fixture();
    let store = open_bytes("roundtrip", &fx.bytes).expect("intact store opens");
    assert_eq!(store.num_graphs(), fx.db.len());
    let labels: Vec<u32> = fx.db.truth().iter().map(|&l| l as u32).collect();
    assert_eq!(store.labels(), &labels[..]);
    let mapped_model = store.model();
    for i in 0..store.num_graphs().min(10) {
        // bitwise: the mapped columns and deserialized weights must be the
        // exact bytes that went in
        assert_eq!(
            fx.model.predict_proba(fx.db.graph(i)),
            mapped_model.predict_proba(store.graph(i)),
            "graph {i} diverged through the store"
        );
    }
}

#[test]
fn store_truncated_file_is_typed() {
    let fx = store_fixture();
    // header promises `file_len` bytes; give it half
    let cut = &fx.bytes[..fx.bytes.len() / 2];
    match open_bytes("trunc", cut) {
        Err(StoreError::Truncated { needed, actual }) => {
            assert_eq!(needed, fx.bytes.len() as u64);
            assert_eq!(actual, cut.len() as u64);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    // even the header itself missing must not panic
    assert!(matches!(open_bytes("trunc-hdr", &fx.bytes[..10]), Err(StoreError::Truncated { .. })));
}

#[test]
fn store_bad_magic_is_typed() {
    let fx = store_fixture();
    let mut bytes = fx.bytes.clone();
    bytes[..MAGIC.len()].copy_from_slice(b"NOTGVEX!");
    assert!(matches!(open_bytes("magic", &bytes), Err(StoreError::BadMagic)));
}

#[test]
fn store_wrong_version_is_typed() {
    let fx = store_fixture();
    let mut bytes = fx.bytes.clone();
    bytes[8..12].copy_from_slice(&(VERSION + 7).to_le_bytes());
    match open_bytes("version", &bytes) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, VERSION + 7);
            assert_eq!(supported, VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn store_corrupted_section_payload_is_typed() {
    let fx = store_fixture();
    let features = SectionId::Features as u32;
    let (_, _, offset, len) = *section_table(&fx.bytes)
        .iter()
        .find(|(id, ..)| *id == features)
        .expect("features section present");
    assert!(len > 0);
    let mut bytes = fx.bytes.clone();
    bytes[offset as usize + len as usize / 2] ^= 0xA5;
    match open_bytes("crc", &bytes) {
        Err(StoreError::ChecksumMismatch { section }) => assert_eq!(section, "features"),
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn store_corrupted_table_is_typed() {
    let fx = store_fixture();
    let mut bytes = fx.bytes.clone();
    // flip a bit inside the section table without re-patching its CRC
    bytes[HEADER_LEN + 4] ^= 0x01;
    match open_bytes("table", &bytes) {
        Err(StoreError::ChecksumMismatch { section }) => assert_eq!(section, "table"),
        other => panic!("expected table ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn store_misaligned_section_is_typed() {
    let fx = store_fixture();
    let features = SectionId::Features as u32;
    let (_, field_at, offset, _) = *section_table(&fx.bytes)
        .iter()
        .find(|(id, ..)| *id == features)
        .expect("features section present");
    let mut bytes = fx.bytes.clone();
    // knock the offset off its 64-byte alignment, then make the table CRC
    // agree so the alignment check itself is what fires
    bytes[field_at..field_at + 8].copy_from_slice(&(offset + 1).to_le_bytes());
    repatch_table_crc(&mut bytes);
    match open_bytes("align", &bytes) {
        Err(StoreError::Misaligned { section, offset: got }) => {
            assert_eq!(section, "features");
            assert_eq!(got, offset + 1);
        }
        other => panic!("expected Misaligned, got {other:?}"),
    }
}
