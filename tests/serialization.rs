//! Serialization round trips: the CLI's persistence paths (models and
//! views as JSON, databases as TU files) must preserve behavior, not just
//! structure.

use gvex::core::{index_views, ApproxGvex, Configuration, ExplanationViewSet};
use gvex::datasets::{read_tu_dataset, write_tu_dataset, DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, GcnModel, Split};

#[test]
fn model_json_round_trip_preserves_predictions() {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 21);
    let split = Split::paper(&db, 21);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, _) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 60, lr: 0.01, seed: 21, patience: 0, ..Default::default() },
    );
    let json = serde_json::to_string(&model).expect("model serializes");
    let back: GcnModel = serde_json::from_str(&json).expect("model parses");
    for g in db.graphs().iter().take(10) {
        assert_eq!(model.predict_proba(g), back.predict_proba(g));
    }
}

#[test]
fn views_json_round_trip_is_queryable() {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 22);
    let split = Split::paper(&db, 22);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, _) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 60, lr: 0.01, seed: 22, patience: 0, ..Default::default() },
    );
    let views = ApproxGvex::new(Configuration::paper_mut(8)).explain(&model, &db, &[1]);
    let json = serde_json::to_string(&views).expect("views serialize");
    let back: ExplanationViewSet = serde_json::from_str(&json).expect("views parse");

    assert_eq!(back.views.len(), views.views.len());
    assert_eq!(back.total_explainability(), views.total_explainability());
    // the deserialized views must be indexable and answer the same queries
    let idx_a = index_views(&views);
    let idx_b = index_views(&back);
    assert_eq!(idx_a.patterns().len(), idx_b.patterns().len());
    for pid in 0..idx_a.patterns().len() {
        assert_eq!(idx_a.graphs_matching(pid), idx_b.graphs_matching(pid));
    }
}

#[test]
fn tu_round_trip_preserves_classifier_behavior() {
    let db = DatasetKind::Pcqm4m.generate(Scale::Small, 23);
    let dir = std::env::temp_dir().join(format!("gvex-ser-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    write_tu_dataset(&db, &dir, "PCQ").expect("export");
    let back = read_tu_dataset(&dir, "PCQ").expect("import");

    // train on the original, predict identically on the round-tripped copy
    let split = Split::paper(&db, 23);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 8,
        layers: 2,
        num_classes: db.num_classes(),
    };
    let (model, _) = train(
        &db,
        cfg,
        &split,
        TrainOptions { epochs: 40, lr: 0.01, seed: 23, patience: 0, ..Default::default() },
    );
    for (a, b) in db.graphs().iter().zip(back.graphs()).take(12) {
        assert_eq!(model.predict(a), model.predict(b));
    }
    let _ = std::fs::remove_dir_all(&dir);
}
