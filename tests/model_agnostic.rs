//! Model-agnosticism (§1, Table 1's "MA" column): GVEX treats the
//! classifier as a black box, so swapping the GCN for SAGE-mean or GIN-sum
//! message passing — or a different readout — must not break explanation
//! generation. The paper claims applicability to "any GNN employing
//! message-passing" (§6.1); this test holds the repository to it.

use gvex::core::{ApproxGvex, Configuration, StreamGvex};
use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{
    train_model, trainer::TrainOptions, Aggregation, GcnConfig, GcnModel, Readout, Split,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn gvex_explains_every_message_passing_variant() {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 13);
    let split = Split::paper(&db, 13);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let opts = TrainOptions { epochs: 100, lr: 0.01, seed: 13, patience: 0, ..Default::default() };

    for (aggregation, readout) in [
        (Aggregation::GcnNorm, Readout::Max), // the paper's classifier
        (Aggregation::Mean, Readout::Mean),   // GraphSAGE-flavored
        (Aggregation::Sum, Readout::Sum),     // GIN-flavored
    ] {
        let base = GcnModel::new(cfg, &mut ChaCha8Rng::seed_from_u64(13))
            .with_aggregation(aggregation)
            .with_readout(readout);
        let (model, report) = train_model(&db, base, &split, opts);
        assert!(
            report.best_val_accuracy >= 0.5,
            "{aggregation:?}/{readout:?} failed to learn at all"
        );

        let gvex_cfg = Configuration::paper_mut(8);
        let ag = ApproxGvex::new(gvex_cfg.clone());
        let sg = StreamGvex::new(gvex_cfg);
        let mut explained = 0;
        for &gi in split.test.iter().take(4) {
            let g = db.graph(gi);
            if let Some(sub) = ag.explain_graph(&model, g, gi) {
                assert!(sub.len() <= 8 && !sub.is_empty());
                explained += 1;
            }
            if let Some((sub, patterns)) = sg.explain_graph_stream(&model, g, gi, None) {
                assert!(sub.len() <= 8);
                // streaming must keep maintaining patterns regardless of model
                let _ = patterns;
            }
        }
        assert!(explained > 0, "{aggregation:?}/{readout:?}: ApproxGVEX explained nothing");
    }
}

#[test]
fn variant_models_serialize_round_trip() {
    let cfg = GcnConfig { input_dim: 3, hidden: 4, layers: 2, num_classes: 2 };
    let model = GcnModel::new(cfg, &mut ChaCha8Rng::seed_from_u64(1))
        .with_aggregation(Aggregation::Mean)
        .with_readout(Readout::Sum);
    let json = serde_json::to_string(&model).expect("serialize");
    let back: GcnModel = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.aggregation(), Aggregation::Mean);
    assert_eq!(back.readout(), Readout::Sum);
    // same predictions after round trip
    let mut b = gvex::graph::Graph::builder(false);
    for i in 0..3 {
        b.add_node(0, &[i as f32, 1.0, 0.0]);
    }
    b.add_edge(0, 1, 0);
    b.add_edge(1, 2, 0);
    let g = b.build();
    assert_eq!(model.predict_proba(&g), back.predict_proba(&g));
}
