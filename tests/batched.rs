//! Differential contract of the block-diagonal batched engine: batched
//! inference must agree with the per-graph path on every graph — mixed
//! sizes, empty graphs included — and the database-wide entry points must
//! be insensitive to how the work is chunked.
//!
//! The batched SpMM reproduces per-graph sparse rows bitwise; only the
//! dense products may tile differently at batch shapes, so probabilities
//! are compared at 1e-5 (observed drift is ~1e-7) while argmax labels are
//! compared exactly.

use gvex::gnn::trainer::TrainOptions;
use gvex::gnn::{train, GcnConfig, GcnModel, Split};
use gvex::graph::{Graph, GraphDatabase, GraphRef};

fn motif_graph(chain: usize) -> Graph {
    let mut b = Graph::builder(false);
    for _ in 0..chain {
        b.add_node(0, &[1.0, 0.0, 0.0]);
    }
    let m1 = b.add_node(1, &[0.0, 1.0, 0.0]);
    let m2 = b.add_node(2, &[0.0, 0.0, 1.0]);
    for v in 1..chain {
        b.add_edge(v - 1, v, 0);
    }
    b.add_edge(chain - 1, m1, 0);
    b.add_edge(m1, m2, 0);
    b.build()
}

fn plain_graph(chain: usize) -> Graph {
    let mut b = Graph::builder(false);
    for _ in 0..chain {
        b.add_node(0, &[1.0, 0.0, 0.0]);
    }
    for v in 1..chain {
        b.add_edge(v - 1, v, 0);
    }
    b.build()
}

fn toy_database() -> GraphDatabase {
    let mut db = GraphDatabase::new(vec!["plain".into(), "motif".into()]);
    for i in 0..6 {
        db.push(plain_graph(5 + i % 3), 0);
        db.push(motif_graph(4 + i % 3), 1);
    }
    db
}

fn trained() -> (GraphDatabase, GcnModel) {
    let db = toy_database();
    let split =
        Split { train: (0..db.len()).collect(), val: (0..db.len()).collect(), test: vec![] };
    let gcfg = GcnConfig { input_dim: 3, hidden: 8, layers: 2, num_classes: 2 };
    let opts = TrainOptions { epochs: 60, lr: 0.01, seed: 1, patience: 0, ..Default::default() };
    let (model, _) = train(&db, gcfg, &split, opts);
    (db, model)
}

#[test]
fn batched_probabilities_match_per_graph_within_tolerance() {
    let (db, model) = trained();
    // mixed sizes + an empty graph riding in the middle of the batch
    let empty = Graph::builder(false).build();
    let mut views: Vec<GraphRef> = db.graphs().iter().map(|g| g.view()).collect();
    views.insert(3, empty.view());
    let batched = model.predict_proba_batch(&views);
    assert_eq!(batched.len(), views.len());
    for (view, probs) in views.iter().zip(&batched) {
        let want = model.predict_proba(view);
        for (a, b) in probs.iter().zip(&want) {
            assert!((a - b).abs() < 1e-5, "batched {a} vs per-graph {b}");
        }
    }
}

#[test]
fn predict_all_and_classify_database_match_per_graph_labels() {
    let (db, model) = trained();
    let per_graph: Vec<usize> = db.graphs().iter().map(|g| model.predict(g)).collect();
    assert_eq!(gvex::core::parallel::predict_all(&model, &db), per_graph);
    assert_eq!(model.classify_database(&db, 0), per_graph);
    // chunking must be invisible
    assert_eq!(model.classify_database(&db, 5), per_graph);
    assert_eq!(model.classify_database(&db, 1), per_graph);
}

#[test]
fn mini_batch_trained_model_agrees_between_batched_and_per_graph_inference() {
    let db = toy_database();
    let split =
        Split { train: (0..db.len()).collect(), val: (0..db.len()).collect(), test: vec![] };
    let gcfg = GcnConfig { input_dim: 3, hidden: 8, layers: 2, num_classes: 2 };
    let opts = TrainOptions { epochs: 60, lr: 0.01, seed: 1, patience: 0, batch_size: 4 };
    let (model, report) = train(&db, gcfg, &split, opts);
    assert!(report.best_val_accuracy >= 0.99, "mini-batch run underfit: {report:?}");
    let per_graph: Vec<usize> = db.graphs().iter().map(|g| model.predict(g)).collect();
    assert_eq!(model.classify_database(&db, 0), per_graph);
}
