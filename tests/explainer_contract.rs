//! Contract test across every explainer (GVEX + the four baselines): the
//! shared `Explainer` interface must respect the node budget, be
//! deterministic under a fixed seed, and produce valid node ids — the
//! assumptions the metric and benchmark layers rely on.

use gvex::baselines::{GStarX, GcfExplainer, GnnExplainer, SubgraphX};
use gvex::core::{ApproxGvex, Configuration, Explainer, StreamGvex};
use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, Split};
use gvex::graph::GraphDatabase;
use gvex::metrics::{evaluate, fidelity_plus};

fn trained() -> (GraphDatabase, gvex::gnn::GcnModel, Split) {
    let db = DatasetKind::Mutagenicity.generate(Scale::Small, 42);
    let split = Split::paper(&db, 42);
    let cfg = GcnConfig {
        input_dim: db.feature_dim(),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let opts = TrainOptions { epochs: 100, lr: 0.01, seed: 42, patience: 0, ..Default::default() };
    let (model, _) = train(&db, cfg, &split, opts);
    (db, model, split)
}

fn roster() -> Vec<Box<dyn Explainer>> {
    let cfg = Configuration::paper_mut(10);
    vec![
        Box::new(ApproxGvex::new(cfg.clone())),
        Box::new(StreamGvex::new(cfg)),
        Box::new(GnnExplainer { epochs: 20, ..Default::default() }),
        Box::new(SubgraphX { iterations: 10, shapley_samples: 5, ..Default::default() }),
        Box::new(GStarX { samples_per_node: 6, ..Default::default() }),
        Box::new(GcfExplainer::default()),
    ]
}

#[test]
fn budget_and_validity() {
    let (db, model, split) = trained();
    for ex in roster() {
        for &gi in split.test.iter().take(3) {
            let g = db.graph(gi);
            for budget in [1usize, 5, 50] {
                let e = ex.explain(&model, g, budget);
                assert!(
                    e.len() <= budget.min(g.num_nodes()),
                    "{} exceeded budget {budget} on graph {gi}",
                    ex.name()
                );
                assert!(
                    e.nodes.iter().all(|&v| v < g.num_nodes()),
                    "{} produced invalid ids",
                    ex.name()
                );
                // sorted + deduped per NodeExplanation contract
                let mut sorted = e.nodes.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted, e.nodes);
            }
        }
    }
}

#[test]
fn determinism_under_fixed_seed() {
    let (db, model, split) = trained();
    let gi = split.test[0];
    let g = db.graph(gi);
    for ex in roster() {
        let a = ex.explain(&model, g, 8);
        let b = ex.explain(&model, g, 8);
        assert_eq!(a, b, "{} is nondeterministic", ex.name());
    }
}

#[test]
fn zero_budget_yields_empty() {
    let (db, model, split) = trained();
    let g = db.graph(split.test[0]);
    for ex in roster() {
        assert!(ex.explain(&model, g, 0).is_empty(), "{} ignored zero budget", ex.name());
    }
}

#[test]
fn metrics_pipeline_accepts_all_methods() {
    let (db, model, split) = trained();
    for ex in roster() {
        let pairs: Vec<_> = split
            .test
            .iter()
            .take(3)
            .map(|&gi| {
                let g = db.graph(gi);
                (g, ex.explain(&model, g, 8))
            })
            .collect();
        let q = evaluate(&model, &pairs);
        assert_eq!(q.count, 3);
        assert!(q.sparsity >= 0.0 && q.sparsity <= 1.0, "{} sparsity {}", ex.name(), q.sparsity);
        assert!(q.fidelity_plus.is_finite() && q.fidelity_minus.is_finite());
        // per-graph fidelity bounded by probability range
        for (g, e) in &pairs {
            let f = fidelity_plus(&model, g, e);
            assert!((-1.0..=1.0).contains(&f));
        }
    }
}
