//! End-to-end check that the GCN classifier learns every synthetic dataset
//! well enough for the explanation experiments to be meaningful (§6.1 trains
//! to high accuracy before explaining).

use gvex::datasets::{DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, Split};

fn train_kind(kind: DatasetKind, epochs: usize, lr: f32) -> f32 {
    let db = kind.generate(Scale::Small, 42);
    let split = Split::paper(&db, 42);
    let cfg = GcnConfig {
        input_dim: db.feature_dim().max(1),
        hidden: 16,
        layers: 3,
        num_classes: db.num_classes(),
    };
    let opts = TrainOptions { epochs, lr, seed: 42, patience: 0, ..Default::default() };
    let (model, report) = train(&db, cfg, &split, opts);
    // evaluate on everything (small sets make held-out test noisy)
    let all: Vec<usize> = (0..db.len()).collect();
    let acc = gvex::gnn::trainer::accuracy(&model, &db, &all);
    eprintln!(
        "{}: overall {:.3}, val {:.3}, test {:.3} ({} epochs)",
        kind.short_name(),
        acc,
        report.best_val_accuracy,
        report.test_accuracy,
        report.epochs
    );
    acc
}

#[test]
fn mutagenicity_learnable() {
    assert!(train_kind(DatasetKind::Mutagenicity, 120, 0.01) >= 0.9);
}

#[test]
fn reddit_learnable() {
    assert!(train_kind(DatasetKind::RedditBinary, 120, 0.01) >= 0.9);
}

#[test]
fn enzymes_learnable() {
    assert!(train_kind(DatasetKind::Enzymes, 200, 0.01) >= 0.8);
}

#[test]
fn malnet_learnable() {
    assert!(train_kind(DatasetKind::MalnetTiny, 150, 0.01) >= 0.7);
}

#[test]
fn pcq_learnable() {
    assert!(train_kind(DatasetKind::Pcqm4m, 120, 0.01) >= 0.9);
}

#[test]
fn products_learnable() {
    assert!(train_kind(DatasetKind::Products, 150, 0.01) >= 0.8);
}

#[test]
fn synthetic_learnable() {
    assert!(train_kind(DatasetKind::Synthetic, 300, 0.005) >= 0.9);
}
