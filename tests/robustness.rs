//! Failure-injection and degenerate-input tests: the stack must behave
//! sensibly (defined output or clean rejection, never a panic) on inputs a
//! downstream user will eventually feed it.

use gvex::core::NodeExplanation;
use gvex::core::{ApproxGvex, Configuration, Explainer, StreamGvex};
use gvex::gnn::{GcnConfig, GcnModel};
use gvex::graph::{Graph, GraphDatabase};
use gvex::influence::{InfluenceAnalysis, InfluenceMode};
use gvex::metrics::{fidelity_minus, fidelity_plus, sparsity};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn model(input_dim: usize, classes: usize) -> GcnModel {
    GcnModel::new(
        GcnConfig { input_dim, hidden: 4, layers: 2, num_classes: classes },
        &mut ChaCha8Rng::seed_from_u64(0),
    )
}

#[test]
fn single_node_graph_is_explainable() {
    let mut b = Graph::builder(false);
    b.add_node(0, &[1.0, 0.0]);
    let g = b.build();
    let m = model(2, 2);
    let ag = ApproxGvex::new(Configuration::uniform(0.1, 0.25, 0.5, 0, 5));
    if let Some(sub) = ag.explain_graph(&m, &g, 0) {
        assert_eq!(sub.nodes, vec![0]);
    }
    let sg = StreamGvex::new(Configuration::uniform(0.1, 0.25, 0.5, 0, 5));
    let _ = sg.explain_graph_stream(&m, &g, 0, None);
}

#[test]
fn disconnected_graph_handled() {
    let mut b = Graph::builder(false);
    for _ in 0..6 {
        b.add_node(0, &[1.0, 0.0]);
    }
    b.add_edge(0, 1, 0);
    b.add_edge(3, 4, 0); // two components + isolated nodes
    let g = b.build();
    let m = model(2, 2);
    let ag = ApproxGvex::new(Configuration::uniform(0.1, 0.25, 0.5, 0, 4));
    if let Some(sub) = ag.explain_graph(&m, &g, 0) {
        assert!(sub.len() <= 4);
    }
}

#[test]
fn constant_features_do_not_crash_influence() {
    // identical embeddings → zero pairwise distances → balls must not
    // divide by zero
    let mut b = Graph::builder(false);
    for _ in 0..5 {
        b.add_node(0, &[1.0]);
    }
    for i in 1..5 {
        b.add_edge(i - 1, i, 0);
    }
    let g = b.build();
    let m = model(1, 2);
    let a = InfluenceAnalysis::new(
        &m,
        &g,
        0.1,
        0.25,
        0.5,
        InfluenceMode::Expected,
        &mut ChaCha8Rng::seed_from_u64(0),
    );
    let score = a.score_of(&[0, 2]);
    assert!(score.is_finite() && score >= 0.0);
}

#[test]
fn extreme_feature_magnitudes_stay_finite() {
    let mut b = Graph::builder(false);
    b.add_node(0, &[1e20, -1e20]);
    b.add_node(0, &[1e-20, 0.0]);
    b.add_edge(0, 1, 0);
    let g = b.build();
    let m = model(2, 2);
    let proba = m.predict_proba(&g);
    assert!(proba.iter().all(|p| p.is_finite()));
    assert!((proba.iter().sum::<f32>() - 1.0).abs() < 1e-4);
}

#[test]
fn metrics_on_degenerate_explanations() {
    let mut b = Graph::builder(false);
    for i in 0..4 {
        b.add_node(0, &[i as f32, 1.0]);
    }
    b.add_edge(0, 1, 0);
    let g = b.build();
    let m = model(2, 2);
    for e in [
        NodeExplanation::default(),
        NodeExplanation::new((0..4).collect()),
        NodeExplanation::new(vec![2]),
    ] {
        assert!(fidelity_plus(&m, &g, &e).is_finite());
        assert!(fidelity_minus(&m, &g, &e).is_finite());
        let s = sparsity(&g, &e);
        assert!((0.0..=1.0).contains(&s));
    }
}

#[test]
fn empty_database_explain_yields_empty_views() {
    let db = GraphDatabase::new(vec!["a".into(), "b".into()]);
    let m = model(2, 2);
    let set =
        ApproxGvex::new(Configuration::uniform(0.1, 0.25, 0.5, 0, 5)).explain(&m, &db, &[0, 1]);
    assert_eq!(set.views.len(), 2);
    assert!(set.views.iter().all(|v| v.subgraphs.is_empty()));
    assert_eq!(set.total_explainability(), 0.0);
}

#[test]
fn upper_bound_of_one_selects_single_node() {
    let mut b = Graph::builder(false);
    for i in 0..5 {
        b.add_node(0, &[i as f32, 1.0]);
    }
    for i in 1..5 {
        b.add_edge(i - 1, i, 0);
    }
    let g = b.build();
    let m = model(2, 2);
    let ag = ApproxGvex::new(Configuration::uniform(0.1, 0.25, 0.5, 1, 1));
    if let Some(sub) = ag.explain_graph(&m, &g, 0) {
        assert_eq!(sub.len(), 1);
    }
    let e = Explainer::explain(&ag, &m, &g, 1);
    assert!(e.len() <= 1);
}

#[test]
fn mask_learning_on_edgeless_graph() {
    use gvex::baselines::GnnExplainer;
    let mut b = Graph::builder(false);
    for _ in 0..3 {
        b.add_node(0, &[1.0, 0.0]);
    }
    let g = b.build();
    let m = model(2, 2);
    let ge = GnnExplainer { epochs: 5, ..Default::default() };
    let e = ge.explain(&m, &g, 2);
    assert_eq!(e.len(), 2); // node fallback
}
