//! Edge-feature support (the paper's first future-work item, §7):
//! a classification task where the *edge types* carry the class signal.
//! A plain GCN is structurally blind to edge types; the edge-gated model
//! must learn to separate the classes, and GVEX must be able to explain it.

use gvex::core::{ApproxGvex, Configuration};
use gvex::gnn::{train_model, trainer::TrainOptions, GcnConfig, GcnModel, Split};
use gvex::graph::{Graph, GraphDatabase};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Two classes of identical topology and identical node features; only the
/// edge types differ (class 0: "single" bonds, class 1: "aromatic").
fn edge_type_db(n_per_class: usize) -> GraphDatabase {
    let mut db = GraphDatabase::new(vec!["single".into(), "aromatic".into()]);
    db.edge_types.intern("single");
    db.edge_types.intern("aromatic");
    for i in 0..n_per_class {
        for class in 0..2u32 {
            let mut b = Graph::builder(false);
            let len = 6 + i % 3;
            for _ in 0..len {
                b.add_node(0, &[1.0, 0.5]);
            }
            for v in 1..len {
                b.add_edge(v - 1, v, class);
            }
            b.add_edge(0, len - 1, class);
            db.push(b.build(), class as usize);
        }
    }
    db
}

fn train_variant(db: &GraphDatabase, gated: bool) -> (GcnModel, f32) {
    let split =
        Split { train: (0..db.len()).collect(), val: (0..db.len()).collect(), test: vec![] };
    let cfg = GcnConfig { input_dim: 2, hidden: 8, layers: 2, num_classes: 2 };
    let base = GcnModel::new(cfg, &mut ChaCha8Rng::seed_from_u64(3));
    let base = if gated { base.with_edge_gates(2) } else { base };
    let opts = TrainOptions { epochs: 150, lr: 0.02, seed: 3, patience: 0, ..Default::default() };
    let (model, _) = train_model(db, base, &split, opts);
    let all: Vec<usize> = (0..db.len()).collect();
    let acc = gvex::gnn::trainer::accuracy(&model, db, &all);
    (model, acc)
}

#[test]
fn plain_gcn_cannot_separate_edge_type_classes() {
    let db = edge_type_db(8);
    let (_, acc) = train_variant(&db, false);
    // the two classes are *identical* to an edge-type-blind model
    assert!(acc <= 0.6, "a plain GCN should be at chance on edge-type-only labels, got {acc}");
}

#[test]
fn edge_gated_model_separates_edge_type_classes() {
    let db = edge_type_db(8);
    let (model, acc) = train_variant(&db, true);
    assert!(acc >= 0.95, "edge-gated model stuck at {acc}");
    // the learned gates must actually differ between the two bond types
    let scales = model.edge_gate_scales();
    assert_eq!(scales.len(), 2);
    assert!(
        (scales[0] - scales[1]).abs() > 0.05,
        "gates did not differentiate edge types: {scales:?}"
    );
}

#[test]
fn gvex_explains_edge_gated_model() {
    let db = edge_type_db(8);
    let (model, acc) = train_variant(&db, true);
    assert!(acc >= 0.95);
    let ag = ApproxGvex::new(Configuration::paper_mut(4));
    let mut explained = 0;
    for gi in 0..4 {
        if let Some(sub) = ag.explain_graph(&model, db.graph(gi), gi) {
            assert!(sub.len() <= 4 && !sub.is_empty());
            explained += 1;
        }
    }
    assert!(explained > 0, "GVEX failed to explain the gated model");
}
