//! The trace ring in a dedicated process: capacity comes from
//! `GVEX_OBS_TRACE_CAP` at first use, a full ring drops whole begin/end
//! pairs, and the flushed `chrome://tracing` document is balanced.
//!
//! One test only — the ring is process-global, its capacity latches on
//! first use, and the strict matched-pair assertions need a process where
//! no sibling test has a pair mid-write.

use gvex::obs;

#[test]
fn tiny_ring_drops_pairs_and_flushes_balanced_json() {
    // Before anything touches the ring in this process.
    std::env::set_var("GVEX_OBS_TRACE_CAP", "9"); // odd: rounds down to 8
    obs::set_enabled(true);
    if !obs::enabled() {
        return; // obs feature compiled out: nothing records
    }
    obs::trace::force_active(true);
    for i in 0..16 {
        let _s = obs::span::enter(&format!("obs_trace.span{i}"));
    }
    assert_eq!(obs::trace::capacity(), 8, "capacity from env, rounded down to even");
    let events = obs::trace::events();
    assert_eq!(events.len(), 8, "ring filled exactly to capacity");
    let begins = events.iter().filter(|e| e.begin).count();
    assert_eq!(begins * 2, events.len(), "only whole pairs are retained");
    // 16 spans = 32 events; 8 retained, the rest dropped in pairs.
    assert_eq!(obs::trace::dropped(), 24);
    for e in &events {
        assert_eq!(e.tid, events[0].tid, "single-threaded run stays on one track");
    }

    // The flushed document parses, carries the drop counter, and every
    // begin has its end.
    let path = std::env::temp_dir().join("gvex_obs_trace_test.json");
    obs::trace::write_chrome_trace(&path).expect("trace written");
    let text = std::fs::read_to_string(&path).expect("trace readable");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("trace is valid JSON");
    assert_eq!(
        doc.get_field("otherData")
            .and_then(|o| o.get_field("dropped_events"))
            .and_then(|v| v.as_u64()),
        Some(24)
    );
    let serde_json::Value::Array(rows) = doc.get_field("traceEvents").expect("traceEvents") else {
        panic!("traceEvents is not an array");
    };
    assert_eq!(rows.len(), 8);
    let mut depth: i64 = 0;
    for row in rows {
        match row.get_field("ph") {
            Some(serde_json::Value::Str(ph)) if ph == "B" => depth += 1,
            Some(serde_json::Value::Str(ph)) if ph == "E" => depth -= 1,
            other => panic!("unexpected ph {other:?}"),
        }
        assert!(depth >= 0, "end before begin in sorted event order");
    }
    assert_eq!(depth, 0, "unmatched begin/end events in the flushed trace");
    std::fs::remove_file(&path).ok();

    // clear() resets the ring for the next measured run.
    obs::trace::clear();
    assert!(obs::trace::events().is_empty());
    assert_eq!(obs::trace::dropped(), 0);
    {
        let _s = obs::span::enter("obs_trace.after_clear");
    }
    assert_eq!(obs::trace::events().len(), 2, "one span, one pair");
}
