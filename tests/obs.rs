//! Integration tests for the `gvex-obs` observability layer through the
//! facade crate: histogram edge cases, counters hammered from the rayon
//! pool, the machine-readable report schema, and env-var fallback.
//!
//! The obs registries and the enable toggle are process-global and tests
//! run concurrently, so every test uses unique metric / variable names and
//! only ever *enables* observation.

use gvex::obs;
use rayon::prelude::*;

/// Skips the body when the `obs` feature is compiled out (e.g.
/// `--no-default-features`): the no-op shims legitimately record nothing.
fn obs_on() -> bool {
    obs::set_enabled(true);
    obs::enabled()
}

#[test]
fn histogram_bucketing_edges() {
    if !obs_on() {
        return;
    }
    // Zero, an exact bound, one past the last bound, and u64::MAX.
    obs::metrics::histogram_record("obs_it.hist_edges", 0);
    obs::metrics::histogram_record("obs_it.hist_edges", 4);
    obs::metrics::histogram_record("obs_it.hist_edges", 262_144);
    obs::metrics::histogram_record("obs_it.hist_edges", 262_145);
    obs::metrics::histogram_record("obs_it.hist_edges", u64::MAX);
    let (_, h) = obs::metrics::histograms()
        .into_iter()
        .find(|(name, _)| name == "obs_it.hist_edges")
        .expect("histogram registered");
    assert_eq!(h.counts[0], 1, "zero has its own bucket");
    assert_eq!(h.counts[obs::metrics::bucket_index(4).unwrap()], 1, "bounds are upper-inclusive");
    let last = obs::metrics::HISTOGRAM_BOUNDS.len() - 1;
    assert_eq!(h.counts[last], 1, "the last bound is still in-range");
    assert_eq!(h.overflow, 2, "everything past the last bound overflows");
    assert_eq!(h.count, 5);
    assert_eq!(h.sum, u64::MAX, "sum saturates instead of wrapping");
}

#[test]
fn concurrent_counter_increments_from_rayon_pool() {
    if !obs_on() {
        return;
    }
    const WORKERS: usize = 4;
    const PER_ITEM: u64 = 250;
    let pool = rayon::ThreadPoolBuilder::new().num_threads(WORKERS).build().unwrap();
    let items: Vec<usize> = (0..64).collect();
    pool.install(|| {
        items.par_iter().for_each(|_| {
            for _ in 0..PER_ITEM {
                obs::metrics::counter_add("obs_it.concurrent", 1);
            }
            obs::metrics::histogram_record("obs_it.concurrent_hist", PER_ITEM);
        });
    });
    let total = obs::metrics::counters()
        .into_iter()
        .find(|(name, _)| name == "obs_it.concurrent")
        .map(|(_, v)| v)
        .expect("counter registered");
    assert_eq!(total, items.len() as u64 * PER_ITEM, "increments lost under contention");
    let (_, h) = obs::metrics::histograms()
        .into_iter()
        .find(|(name, _)| name == "obs_it.concurrent_hist")
        .expect("histogram registered");
    assert_eq!(h.count, items.len() as u64);
}

#[test]
fn report_json_parses_and_carries_schema() {
    if !obs_on() {
        return;
    }
    // Seed at least one span, counter, and histogram so every section of
    // the document is non-trivial.
    {
        let _s = obs::span::enter("obs_it.report_span");
    }
    obs::metrics::counter_add("obs_it.report_counter", 7);
    obs::metrics::histogram_record("obs_it.report_hist", 3);

    let text = obs::report::render_json();
    let doc: serde_json::Value = serde_json::from_str(&text).expect("report is valid JSON");
    let field = |key: &str| doc.get_field(key).unwrap_or_else(|| panic!("missing field {key:?}"));
    assert_eq!(field("schema_version").as_u64(), Some(obs::report::SCHEMA_VERSION));
    assert!(field("threads").as_u64().unwrap() >= 1);
    assert!(field("open_spans").as_i64().is_some());
    let serde_json::Value::Array(spans) = field("spans") else { panic!("spans is not an array") };
    assert!(
        spans.iter().any(|s| {
            s.get_field("path") == Some(&serde_json::Value::Str("obs_it.report_span".into()))
        }),
        "seeded span missing from {spans:?}"
    );
    assert_eq!(
        field("counters").get_field("obs_it.report_counter").and_then(|v| v.as_u64()),
        Some(7)
    );
    let hist = field("histograms").get_field("obs_it.report_hist").expect("histogram in report");
    assert_eq!(hist.get_field("count").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(hist.get_field("sum").and_then(|v| v.as_u64()), Some(3));
    let arr_len = |v: &serde_json::Value| match v {
        serde_json::Value::Array(items) => items.len(),
        other => panic!("expected array, got {other:?}"),
    };
    assert_eq!(
        arr_len(hist.get_field("bounds").unwrap()),
        arr_len(hist.get_field("counts").unwrap()),
        "bounds and counts must stay aligned"
    );

    // Schema v2: every span row carries latency percentiles, and the
    // document has the requests and trace sections.
    let seeded = spans
        .iter()
        .find(|s| s.get_field("path") == Some(&serde_json::Value::Str("obs_it.report_span".into())))
        .unwrap();
    for key in ["p50_ms", "p90_ms", "p99_ms", "p999_ms"] {
        assert!(seeded.get_field(key).is_some(), "span row missing v2 field {key}");
    }
    let _requests = field("requests"); // present even when no scope closed yet
    let trace = field("trace");
    for key in ["active", "events", "dropped", "capacity"] {
        assert!(trace.get_field(key).is_some(), "trace section missing {key}");
    }
}

/// A request scope tags the spans and counters recorded under it — on the
/// opening thread and across the rayon stand-in's workers — and the v2
/// report carries the attribution.
#[test]
fn request_scope_attributes_across_the_pool() {
    if !obs_on() {
        return;
    }
    let pool = rayon::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    {
        let _req = obs::context::ReqScope::begin("obs_it.request");
        let _outer = obs::span::enter("obs_it.req_outer");
        let items: Vec<usize> = (0..24).collect();
        pool.install(|| {
            items.par_iter().for_each(|_| {
                let _s = obs::span::enter("obs_it.req_worker");
                obs::metrics::counter_add("obs_it.req_counter", 1);
            });
        });
    }
    let req = obs::context::snapshot()
        .into_iter()
        .find(|r| r.name == "obs_it.request")
        .expect("request recorded at scope close");
    assert_eq!(req.count, 1);
    assert!(req.total_ns > 0);
    assert!(
        req.spans.iter().any(|(path, _, _)| path.ends_with("obs_it.req_outer")),
        "opening thread's span attributed: {:?}",
        req.spans
    );
    assert!(
        req.spans.iter().any(|(path, count, _)| path.ends_with("obs_it.req_worker") && *count > 0),
        "worker spans attributed across the fan-out: {:?}",
        req.spans
    );
    let (_, attributed) = req
        .counters
        .iter()
        .find(|(name, _)| name == "obs_it.req_counter")
        .expect("counter attributed to the request");
    assert_eq!(*attributed, 24, "every worker increment tagged to the request");

    // The same numbers appear in the v2 report's requests section.
    let text = obs::report::render_json();
    let doc: serde_json::Value = serde_json::from_str(&text).expect("report is valid JSON");
    let entry = doc
        .get_field("requests")
        .and_then(|r| r.get_field("obs_it.request"))
        .expect("request in report");
    assert_eq!(entry.get_field("count").and_then(|v| v.as_u64()), Some(1));
    assert!(entry.get_field("p99_ms").is_some());
    assert_eq!(
        entry
            .get_field("counters")
            .and_then(|c| c.get_field("obs_it.req_counter"))
            .and_then(|v| v.as_u64()),
        Some(24)
    );
}

#[test]
fn env_threads_survives_garbage() {
    // `threads()` reads the real GVEX_THREADS; in this test binary nothing
    // else depends on it (pools are built with explicit num_threads).
    std::env::set_var("GVEX_THREADS", "not-a-number");
    assert!(obs::env::threads() >= 1, "garbage must fall back, not abort");
    std::env::set_var("GVEX_THREADS", "3");
    assert_eq!(obs::env::threads(), 3);
    std::env::remove_var("GVEX_THREADS");
    assert!(obs::env::threads() >= 1);

    assert_eq!(obs::env::parse_usize("GVEX_OBS_IT_UNSET_USIZE"), Ok(None));
    std::env::set_var("GVEX_OBS_IT_BAD_USIZE", "twelve");
    let err = obs::env::parse_usize("GVEX_OBS_IT_BAD_USIZE").unwrap_err();
    assert_eq!(err.var, "GVEX_OBS_IT_BAD_USIZE");
    assert!(err.to_string().contains("unsigned integer"));
}
