//! # GVEX — View-based Explanations for Graph Neural Networks
//!
//! Facade crate re-exporting the full GVEX stack. See the individual crates
//! for details; the typical entry points are:
//!
//! * [`datasets`] — generate a benchmark graph database,
//! * [`gnn`] — train the GCN classifier,
//! * [`core`] — produce explanation views with `ApproxGVEX` / `StreamGVEX`,
//! * [`metrics`] — score them (fidelity, sparsity, compression),
//! * [`baselines`] — the four competitor explainers.
//!
//! ```no_run
//! use gvex::prelude::*;
//! ```

pub use gvex_baselines as baselines;
pub use gvex_core as core;
pub use gvex_datasets as datasets;
pub use gvex_gnn as gnn;
pub use gvex_graph as graph;
pub use gvex_influence as influence;
pub use gvex_ingest as ingest;
pub use gvex_iso as iso;
pub use gvex_linalg as linalg;
pub use gvex_metrics as metrics;
pub use gvex_mining as mining;
pub use gvex_obs as obs;
pub use gvex_serve as serve;
pub use gvex_store as store;

/// Convenient glob-import of the most common types.
pub mod prelude {
    pub use gvex_core::{ApproxGvex, Configuration, ExplanationView, StreamGvex};
    pub use gvex_datasets::DatasetKind;
    pub use gvex_gnn::{GcnConfig, GcnModel, Split};
    pub use gvex_graph::{Graph, GraphDatabase};
    pub use gvex_metrics::ExplanationQuality;
}
