//! The `gvex` command-line tool: generate data, train the classifier,
//! produce explanation views, and query them — the full §1 workflow from a
//! terminal.
//!
//! ```text
//! gvex stats    --dataset MUT --scale bench
//! gvex export   --dataset MUT --scale bench --out ./mut-tu
//! gvex train    --dataset MUT --scale bench --model-out model.json
//! gvex explain  --dataset MUT --scale bench --model model.json \
//!               --labels 0,1 --upper 10 --views-out views.json
//! gvex query    --views views.json --discriminative 1
//! ```
//!
//! `--tu-dir <dir> --tu-name <DS>` may replace `--dataset` everywhere to run
//! on a real TUDataset download instead of a synthetic stand-in.

use gvex::core::{
    index_views, Configuration, ExplainSession, ExplanationViewSet, GreedyStrategy,
    SelectionStrategy, StreamStrategy, ViewIndex,
};
use gvex::datasets::{dataset_stats, read_tu_dataset, write_tu_dataset, DatasetKind, Scale};
use gvex::gnn::{train, trainer::TrainOptions, GcnConfig, GcnModel, Split};
use gvex::graph::GraphDatabase;
use gvex::ingest::{generate, read_log, to_jsonl, write_log, GenProfile, IngestEngine};
use gvex::serve::{Client, Request, ServeState, Server, ServerConfig};
use gvex::store::{BuildInput, SectionId, Store};
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: gvex <stats|export|train|explain|query|serve|request|ingest|db|obs> [options]\n\
         \n\
         common options:\n\
           --dataset <MUT|RED|ENZ|MAL|PCQ|PRO|SYN>   synthetic stand-in\n\
           --scale <small|bench|full>                 generation scale (default bench)\n\
           --seed <u64>                               generation/training seed (default 42)\n\
           --tu-dir <dir> --tu-name <DS>              read a TU-format dataset instead\n\
           --db <file.gvex>                           serve dataset/model/views from a\n\
                                                      built store instead of regenerating\n\
         \n\
         stats    print the Table-3 row for the dataset\n\
         export   --out <dir>: write the dataset in TU format\n\
         train    --model-out <file>: train the GCN and save it as JSON\n\
                  [--batch-size <n>]: graphs per optimizer step; n > 1 packs\n\
                  each step into one block-diagonal batched forward/backward\n\
         explain  --model <file> --labels <l0,l1,..> --upper <n>\n\
                  [--stream] [--views-out <file>]: generate explanation views\n\
         query    --views <file> | --db <file.gvex>\n\
                  [--label <l>] [--discriminative <l>]\n\
         serve    --db <file.gvex> [--addr <host:port>] [--workers <n>]\n\
                  [--queue <n>] [--cache-capacity <n>] [--epoch-interval <n>]:\n\
                  answer explain/node/query/mutate requests over TCP until\n\
                  a shutdown request arrives\n\
         request  --addr <host:port> --kind <ping|stats|explain|node|query|mutate|reload|shutdown>\n\
                  [--label <l>] [--graph <i>] [--target <v>] [--upper <n>]\n\
                  [--stream] [--discriminative <l>] [--path <file.gvex>]\n\
                  [--mutations <file.jsonl>] [--commit]:\n\
                  send one request to a running daemon, print the answer\n\
         ingest   gen --db <file.gvex> --out <file.jsonl> [--count <n>]\n\
                  [--seed <u64>] [--profile <localized|churn>]: synthesize a\n\
                  replayable mutation log against a built store\n\
                  replay --db <file.gvex> --mutations <file.jsonl>\n\
                  [--upper <n>] [--epoch-interval <n>] [--threads <n>]\n\
                  [--snapshot-out <file.gvex>] [--verify]: apply the log\n\
                  with incremental view maintenance; --verify diffs the\n\
                  result against a full recompute, --snapshot-out writes\n\
                  the post-ingest epoch as a servable store\n\
                  send --addr <host:port> --mutations <file.jsonl>\n\
                  [--batch <n>] [--upper <n>] [--commit]: stream the log\n\
                  to a running daemon as mutate requests\n\
         db       build --out <file.gvex>: materialize dataset + trained model\n\
                  + mined views into one mmap-servable store\n\
                  [--upper <n>] [--stream] [--no-views] + train/dataset flags\n\
                  inspect <file.gvex>: dump the section table and stats\n\
         obs      diff <old.json> <new.json>: compare two OBS_report.json\n\
                  files (schema v1 or v2) and exit 1 on a perf regression\n\
                  [--span-pct <n>] [--counter-pct <n>] [--p99-pct <n>]\n\
                  [--min-span-ms <x>] [--min-counter <n>]"
    );
    std::process::exit(2)
}

fn open_store(path: &str) -> Store {
    Store::open(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("failed to open store {path}: {e}");
        std::process::exit(1);
    })
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                flags.insert(key.to_string(), String::from("true"));
                i += 1;
            }
        } else {
            eprintln!("unexpected argument: {a}");
            usage();
        }
    }
    flags
}

fn load_db(flags: &HashMap<String, String>) -> GraphDatabase {
    if let Some(path) = flags.get("db") {
        return open_store(path).database();
    }
    if let (Some(dir), Some(name)) = (flags.get("tu-dir"), flags.get("tu-name")) {
        return read_tu_dataset(Path::new(dir), name).unwrap_or_else(|e| {
            eprintln!("failed to read TU dataset: {e}");
            std::process::exit(1);
        });
    }
    let kind = match flags.get("dataset").map(String::as_str) {
        Some("MUT") => DatasetKind::Mutagenicity,
        Some("RED") => DatasetKind::RedditBinary,
        Some("ENZ") => DatasetKind::Enzymes,
        Some("MAL") => DatasetKind::MalnetTiny,
        Some("PCQ") => DatasetKind::Pcqm4m,
        Some("PRO") => DatasetKind::Products,
        Some("SYN") => DatasetKind::Synthetic,
        other => {
            eprintln!("missing or unknown --dataset {other:?}");
            usage();
        }
    };
    let scale = match flags.get("scale").map(String::as_str) {
        None | Some("bench") => Scale::Bench,
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        Some(s) => {
            eprintln!("unknown --scale {s}");
            usage();
        }
    };
    let seed: u64 = flags.get("seed").map_or(42, |s| s.parse().unwrap_or(42));
    kind.generate(scale, seed)
}

fn cmd_stats(flags: &HashMap<String, String>) {
    let db = load_db(flags);
    let s = dataset_stats(&db);
    println!(
        "graphs: {}\nclasses: {}\navg nodes: {:.1}\navg edges: {:.1}\nfeature dim: {}\nmax |V|: {}",
        s.num_graphs, s.num_classes, s.avg_nodes, s.avg_edges, s.feature_dim, s.max_nodes
    );
}

fn cmd_export(flags: &HashMap<String, String>) {
    let db = load_db(flags);
    let out = flags.get("out").unwrap_or_else(|| usage());
    let name = flags.get("tu-name").map(String::as_str).unwrap_or("GVEX");
    write_tu_dataset(&db, Path::new(out), name).unwrap_or_else(|e| {
        eprintln!("export failed: {e}");
        std::process::exit(1);
    });
    println!("wrote TU dataset '{name}' to {out}");
}

fn trained_model(flags: &HashMap<String, String>, db: &GraphDatabase) -> (GcnModel, Split) {
    let seed: u64 = flags.get("seed").map_or(42, |s| s.parse().unwrap_or(42));
    let split = Split::paper(db, seed);
    if let Some(path) = flags.get("model") {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("failed to read model {path}: {e}");
            std::process::exit(1);
        });
        let model = serde_json::from_str(&text).unwrap_or_else(|e| {
            eprintln!("failed to parse model {path}: {e}");
            std::process::exit(1);
        });
        return (model, split);
    }
    let epochs: usize = flags.get("epochs").map_or(150, |s| s.parse().unwrap_or(150));
    let lr: f32 = flags.get("lr").map_or(0.01, |s| s.parse().unwrap_or(0.01));
    let batch_size: usize = flags.get("batch-size").map_or(1, |s| s.parse().unwrap_or(1));
    let cfg = GcnConfig {
        input_dim: db.feature_dim().max(1),
        hidden: flags.get("hidden").map_or(16, |s| s.parse().unwrap_or(16)),
        layers: 3,
        num_classes: db.num_classes(),
    };
    let (model, report) =
        train(db, cfg, &split, TrainOptions { epochs, lr, seed, patience: 0, batch_size });
    eprintln!(
        "trained: val accuracy {:.3}, test accuracy {:.3} ({} epochs)",
        report.best_val_accuracy, report.test_accuracy, report.epochs
    );
    (model, split)
}

fn cmd_train(flags: &HashMap<String, String>) {
    let db = load_db(flags);
    let (model, _) = trained_model(flags, &db);
    let out = flags.get("model-out").unwrap_or_else(|| usage());
    let json = serde_json::to_string(&model).expect("model serializes");
    std::fs::write(out, json).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    println!("saved model to {out}");
}

/// The per-run serving bundle, shared by `explain`, `query`, `serve`, and
/// the `--db`-less fallbacks: one [`ServeState`] instead of each command
/// re-opening the store and re-materializing database/model/views its own
/// way.
fn serve_state(flags: &HashMap<String, String>) -> ServeState {
    if let Some(path) = flags.get("db") {
        let state = ServeState::open(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("failed to open store {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "[gvex] serving from {path}: {} graphs, {} views, fingerprint {:016x}",
            state.db().len(),
            state.views().views.len(),
            state.fingerprint()
        );
        state
    } else {
        let db = load_db(flags);
        let (model, _) = trained_model(flags, &db);
        let dataset =
            flags.get("dataset").or_else(|| flags.get("tu-name")).map_or("TU", String::as_str);
        ServeState::from_parts(dataset, db, model, ExplanationViewSet::default())
    }
}

fn cmd_explain(flags: &HashMap<String, String>) {
    // `--db` serves database AND model straight from the store: no
    // regeneration, no retraining — the open-and-serve hot path.
    let state = serve_state(flags);
    let db = state.db();
    let labels: Vec<usize> = flags
        .get("labels")
        .map(|s| s.split(',').filter_map(|x| x.trim().parse().ok()).collect())
        .unwrap_or_else(|| (0..db.num_classes()).collect());
    let upper: usize = flags.get("upper").map_or(10, |s| s.parse().unwrap_or(10));
    let cfg = Configuration::paper_mut(upper);

    // One pooled session owns the model handle, forward-trace cache, and
    // influence memo; generation and verification below share it, so no
    // graph is forwarded or differentiated twice.
    let lease = state.pool().checkout();
    let session = lease.session(state.model(), cfg).unwrap_or_else(|e| {
        eprintln!("invalid configuration: {e}");
        std::process::exit(1);
    });
    let strategy: &dyn SelectionStrategy =
        if flags.contains_key("stream") { &StreamStrategy } else { &GreedyStrategy };
    let views = session.explain(strategy, db, &labels);

    // Verify every view against C1–C3 through the session's trace cache:
    // the member graphs repeat across views, so their full forward passes
    // are memoized (and the hit/miss counters land in the obs report).
    for view in &views.views {
        let report = session.verify(db, view);
        println!(
            "label {}: verification C1={} C2={} C3={} -> {}",
            view.label,
            report.is_graph_view,
            report.is_explanation_view,
            report.properly_covers,
            if report.is_valid() { "valid" } else { "INVALID" }
        );
    }
    let (hits, misses) = session.trace_cache().stats();
    eprintln!("[gvex] verification trace cache: {hits} hits, {misses} misses");

    for view in &views.views {
        println!(
            "label {} ({}): {} subgraphs, {} patterns, compression {:.1}%, edge loss {:.2}%, f = {:.3}",
            view.label,
            db.class_names.get(view.label).cloned().unwrap_or_default(),
            view.subgraphs.len(),
            view.patterns.len(),
            view.compression() * 100.0,
            view.edge_loss * 100.0,
            view.explainability
        );
        for (i, p) in view.patterns.iter().enumerate() {
            let desc: Vec<String> = if p.num_edges() == 0 {
                (0..p.num_nodes()).map(|v| db.node_types.name(p.node_type(v))).collect()
            } else {
                p.edges()
                    .map(|(u, v, _)| {
                        format!(
                            "{}-{}",
                            db.node_types.name(p.node_type(u)),
                            db.node_types.name(p.node_type(v))
                        )
                    })
                    .collect()
            };
            println!("  P{i}: {}", desc.join(", "));
        }
    }
    if let Some(out) = flags.get("views-out") {
        let json = serde_json::to_string(&views).expect("views serialize");
        std::fs::write(out, json).unwrap_or_else(|e| {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        });
        println!("saved views to {out}");
    }
}

fn cmd_query(flags: &HashMap<String, String>) {
    // `--db` goes through the shared serving state, which deserializes the
    // views and builds the query index exactly once — the same bundle
    // `gvex serve` answers from, so CLI queries and served queries read
    // identical indexes.
    let state;
    let local;
    let (views, idx): (&ExplanationViewSet, &ViewIndex) = if let Some(db_path) = flags.get("db") {
        state = serve_state(flags);
        if state.views().views.is_empty() {
            eprintln!("store {db_path} carries no views (built with --no-views?)");
            std::process::exit(1);
        }
        (state.views(), state.index())
    } else {
        let path = flags.get("views").unwrap_or_else(|| usage());
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(1);
        });
        local = {
            let v: ExplanationViewSet = serde_json::from_str(&text).unwrap_or_else(|e| {
                eprintln!("failed to parse {path}: {e}");
                std::process::exit(1);
            });
            let idx = index_views(&v);
            (v, idx)
        };
        (&local.0, &local.1)
    };
    println!("{} distinct patterns across {} views", idx.patterns().len(), views.views.len());

    if let Some(l) = flags.get("label").and_then(|s| s.parse::<usize>().ok()) {
        let pids = idx.patterns_of_label(l);
        println!("label {l} uses {} patterns: {pids:?}", pids.len());
        for pid in pids {
            println!("  P{pid} occurs in graphs {:?}", idx.graphs_matching(pid));
        }
    }
    if let Some(l) = flags.get("discriminative").and_then(|s| s.parse::<usize>().ok()) {
        let pids = idx.discriminative_patterns(l);
        println!("discriminative patterns of label {l}: {pids:?}");
        for pid in pids {
            let p = &idx.patterns()[pid];
            println!("  P{pid}: {} nodes, {} edges", p.num_nodes(), p.num_edges());
        }
    }
}

/// `gvex serve --db <file.gvex>` — run the explanation-serving daemon
/// until a `shutdown` request arrives.
fn cmd_serve(flags: &HashMap<String, String>) {
    if !flags.contains_key("db") {
        eprintln!("serve requires --db <file.gvex>");
        usage();
    }
    let state = serve_state(flags);
    let cfg = ServerConfig {
        workers: flags.get("workers").and_then(|s| s.parse().ok()).unwrap_or(4),
        queue_depth: flags.get("queue").and_then(|s| s.parse().ok()).unwrap_or(64),
        // One shard per class by default: the cache's isolation unit
        // matches the answer space's natural partition.
        cache_shards: flags
            .get("cache-shards")
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| state.db().num_classes().max(1)),
        cache_capacity: flags.get("cache-capacity").and_then(|s| s.parse().ok()).unwrap_or(32),
        epoch_interval: flags.get("epoch-interval").and_then(|s| s.parse().ok()).unwrap_or(8),
    };
    let addr = flags.get("addr").map_or("127.0.0.1:0", String::as_str);
    let server = Server::bind(state, addr, cfg).unwrap_or_else(|e| {
        eprintln!("failed to bind {addr}: {e}");
        std::process::exit(1);
    });
    // Parsed by scripts (and humans) to find the resolved ephemeral port.
    println!("gvex serve: listening on {} ({} workers)", server.addr(), cfg.workers);
    server.join();
    println!("gvex serve: stopped");
}

/// `gvex request --addr <host:port> --kind <..>` — one-shot client: send a
/// single request, print the answer body to stdout.
fn cmd_request(flags: &HashMap<String, String>) {
    let addr = flags.get("addr").unwrap_or_else(|| usage());
    let req = Request {
        kind: flags.get("kind").cloned().unwrap_or_else(|| "ping".to_string()),
        graph: flags.get("graph").and_then(|s| s.parse().ok()),
        target: flags.get("target").and_then(|s| s.parse().ok()),
        label: flags.get("label").and_then(|s| s.parse().ok()),
        discriminative: flags.get("discriminative").and_then(|s| s.parse().ok()),
        upper: flags.get("upper").and_then(|s| s.parse().ok()),
        stream: flags.contains_key("stream"),
        path: flags.get("path").cloned().unwrap_or_default(),
        mutation: flags.get("mutations").map_or_else(String::new, |p| read_mutation_file(p)),
        commit: flags.contains_key("commit"),
    };
    let resp = gvex::serve::client::request_once(addr.as_str(), &req).unwrap_or_else(|e| {
        eprintln!("request to {addr} failed: {e}");
        std::process::exit(1);
    });
    if !resp.ok {
        eprintln!("server error: {}", resp.error);
        std::process::exit(1);
    }
    eprintln!("[gvex] cached={} generation={}", resp.cached, resp.generation);
    println!("{}", resp.body);
}

fn read_mutation_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("failed to read mutation log {path}: {e}");
        std::process::exit(1);
    })
}

/// `gvex ingest gen --db <store> --out <log.jsonl>` — synthesize a
/// mutation log whose records are valid against the store's database when
/// applied in order (the generator replays its own ops on scratch state).
fn cmd_ingest_gen(flags: &HashMap<String, String>) {
    let db_path = flags.get("db").unwrap_or_else(|| usage());
    let out = flags.get("out").unwrap_or_else(|| usage());
    let count: usize = flags.get("count").map_or(64, |s| s.parse().unwrap_or(64));
    let seed: u64 = flags.get("seed").map_or(42, |s| s.parse().unwrap_or(42));
    let profile = match flags.get("profile") {
        None => GenProfile::Localized,
        Some(s) => GenProfile::parse(s).unwrap_or_else(|| {
            eprintln!("unknown --profile {s} (want localized|churn)");
            usage();
        }),
    };
    let db = open_store(db_path).database();
    let muts = generate(&db, count, seed, profile);
    write_log(Path::new(out), &muts).unwrap_or_else(|e| {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out}: {} mutations ({profile:?} profile, seed {seed})", muts.len());
}

/// `gvex ingest replay --db <store> --mutations <log.jsonl>` — apply a
/// mutation log offline with incremental view maintenance, publishing an
/// epoch every `--epoch-interval` mutations. `--verify` diffs the
/// incremental result against a full recompute and exits non-zero on any
/// divergence; `--snapshot-out` writes the final epoch as a servable store.
fn cmd_ingest_replay(flags: &HashMap<String, String>) {
    let db_path = flags.get("db").unwrap_or_else(|| usage());
    let log_path = flags.get("mutations").unwrap_or_else(|| usage());
    let upper: usize = flags.get("upper").map_or(10, |s| s.parse().unwrap_or(10));
    let interval: usize = flags.get("epoch-interval").map_or(8, |s| s.parse().unwrap_or(8)).max(1);
    let threads: usize = flags.get("threads").map_or(1, |s| s.parse().unwrap_or(1)).max(1);
    let store = open_store(db_path);
    let db = store.database();
    let model = store.model();
    let cfg = Configuration::paper_mut(upper);
    let views = match store.views_json() {
        Some(json) => ExplanationViewSet::from_json(json).unwrap_or_else(|e| {
            eprintln!("store views are corrupt: {e}");
            std::process::exit(1);
        }),
        None => {
            eprintln!("store has no views; mining them first (upper {upper})");
            gvex::ingest::rebuild_views(&model, &db, &cfg, threads)
        }
    };
    let meta = store.meta();
    let (dataset, seed, epoch0) = (meta.dataset.clone(), meta.seed, meta.epoch);
    let muts = read_log(Path::new(log_path)).unwrap_or_else(|e| {
        eprintln!("failed to read mutation log {log_path}: {e}");
        std::process::exit(1);
    });
    let mut engine = IngestEngine::new(&dataset, seed, db, model, cfg, views, epoch0)
        .unwrap_or_else(|e| {
            eprintln!("cannot start ingest: {e}");
            std::process::exit(1);
        });
    let t0 = std::time::Instant::now();
    for (i, m) in muts.iter().enumerate() {
        let op = m.parse().unwrap_or_else(|e| {
            eprintln!("mutation {}: {e}", i + 1);
            std::process::exit(1);
        });
        engine.apply(&op).unwrap_or_else(|e| {
            eprintln!("mutation {} rejected: {e}", i + 1);
            std::process::exit(1);
        });
        if engine.pending() >= interval {
            let s = engine.publish_epoch();
            println!(
                "epoch {}: {} mutations folded, {} dirty cache classes",
                s.epoch,
                s.mutations,
                s.dirty_classes.len()
            );
        }
    }
    if engine.pending() > 0 {
        let s = engine.publish_epoch();
        println!(
            "epoch {}: {} mutations folded, {} dirty cache classes",
            s.epoch,
            s.mutations,
            s.dirty_classes.len()
        );
    }
    let elapsed = t0.elapsed();
    if flags.contains_key("verify") {
        let full = engine.rebuilt(threads);
        let eq = gvex::ingest::check_equivalent(&engine.views_set(), &full, engine.cfg());
        if eq.ok {
            println!("verify: incremental views equivalent to full recompute");
        } else {
            eprintln!("verify FAILED: {}", eq.detail);
            std::process::exit(1);
        }
    }
    if let Some(out) = flags.get("snapshot-out") {
        let bytes = engine.snapshot(Path::new(out)).unwrap_or_else(|e| {
            eprintln!("failed to write snapshot {out}: {e}");
            std::process::exit(1);
        });
        println!("snapshot {out}: {bytes} bytes at epoch {}", engine.epoch());
    }
    let st = engine.stats();
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "applied {} mutations in {:.1} ms ({:.0} updates/s): {} epochs, {} views patched, {} recomputed",
        st.mutations_applied,
        elapsed.as_secs_f64() * 1e3,
        st.mutations_applied as f64 / secs,
        st.epochs_published,
        st.views_patched,
        st.views_recomputed
    );
}

/// `gvex ingest send --addr <host:port> --mutations <log.jsonl>` — stream
/// a mutation log to a running daemon as `mutate` requests, `--batch`
/// records per frame. With `--commit` each batch publishes an epoch;
/// without, publishing is left to the daemon's epoch interval.
fn cmd_ingest_send(flags: &HashMap<String, String>) {
    let addr = flags.get("addr").unwrap_or_else(|| usage());
    let log_path = flags.get("mutations").unwrap_or_else(|| usage());
    let batch: usize = flags.get("batch").map_or(16, |s| s.parse().unwrap_or(16)).max(1);
    let upper = flags.get("upper").and_then(|s| s.parse().ok());
    let commit = flags.contains_key("commit");
    let muts = read_log(Path::new(log_path)).unwrap_or_else(|e| {
        eprintln!("failed to read mutation log {log_path}: {e}");
        std::process::exit(1);
    });
    let mut client = Client::connect(addr.as_str()).unwrap_or_else(|e| {
        eprintln!("cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    for (i, chunk) in muts.chunks(batch).enumerate() {
        let req = Request { upper, ..Request::mutate(&to_jsonl(chunk), commit) };
        let resp = client.call(&req).unwrap_or_else(|e| {
            eprintln!("send to {addr} failed: {e}");
            std::process::exit(1);
        });
        if !resp.ok {
            eprintln!("server rejected batch {}: {}", i + 1, resp.error);
            std::process::exit(1);
        }
        println!("batch {}: {}", i + 1, resp.body);
    }
}

/// `gvex ingest <gen|replay|send>` — takes a positional subcommand, so it
/// dispatches before [`parse_flags`].
fn cmd_ingest(rest: &[String]) -> ExitCode {
    let Some((sub, rest)) = rest.split_first() else {
        usage();
    };
    match sub.as_str() {
        "gen" => cmd_ingest_gen(&parse_flags(rest)),
        "replay" => cmd_ingest_replay(&parse_flags(rest)),
        "send" => cmd_ingest_send(&parse_flags(rest)),
        other => {
            eprintln!("unknown ingest subcommand: {other}");
            usage();
        }
    }
    gvex::obs::report::emit();
    ExitCode::SUCCESS
}

/// `gvex db build --out <file.gvex> [dataset/train/mining flags]` —
/// materialize one dataset, its trained model, and the mined views into a
/// single mmap-servable store file.
fn cmd_db_build(flags: &HashMap<String, String>) {
    let out = flags.get("out").unwrap_or_else(|| usage());
    let db = load_db(flags);
    let (model, _) = trained_model(flags, &db);
    let upper: usize = flags.get("upper").map_or(10, |s| s.parse().unwrap_or(10));
    let cfg = Configuration::paper_mut(upper);
    let views_json = if flags.contains_key("no-views") {
        None
    } else {
        let session = ExplainSession::new(&model, cfg.clone()).unwrap_or_else(|e| {
            eprintln!("invalid configuration: {e}");
            std::process::exit(1);
        });
        let strategy: &dyn SelectionStrategy =
            if flags.contains_key("stream") { &StreamStrategy } else { &GreedyStrategy };
        let labels: Vec<usize> = (0..db.num_classes()).collect();
        Some(session.explain(strategy, &db, &labels).to_json())
    };
    let dataset =
        flags.get("dataset").or_else(|| flags.get("tu-name")).map(String::as_str).unwrap_or("TU");
    let seed: u64 = flags.get("seed").map_or(42, |s| s.parse().unwrap_or(42));
    let input = BuildInput {
        db: &db,
        model: &model,
        views_json: views_json.as_deref(),
        dataset,
        seed,
        mining: Some(cfg.mining),
        epoch: 0,
    };
    let bytes = gvex::store::write_store(Path::new(out), &input).unwrap_or_else(|e| {
        eprintln!("failed to write store {out}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote {out}: {bytes} bytes, {} graphs, views {}",
        db.len(),
        if views_json.is_some() { "included" } else { "omitted" }
    );
}

/// `gvex db inspect <file.gvex>` — dump header, metadata, and the section
/// table of a built store.
fn cmd_db_inspect(path: &str) {
    let store = open_store(path);
    let m = store.meta();
    println!(
        "{path}: format v{}, {} bytes via {}",
        gvex::store::VERSION,
        store.mapped_len(),
        store.mapping_kind()
    );
    println!(
        "dataset {} (seed {}, epoch {}): {} graphs, {} classes, feature dim {}, {}",
        m.dataset,
        m.seed,
        m.epoch,
        m.num_graphs,
        m.class_names.len(),
        m.feature_dim,
        if m.directed { "directed" } else { "undirected" }
    );
    let c = m.model.config;
    println!(
        "model: {} layers x {} hidden -> {} classes, {:?}/{:?}, edge gates: {}",
        c.layers,
        c.hidden,
        c.num_classes,
        m.model.aggregation,
        m.model.readout,
        if m.model.edge_gate_types > 0 {
            format!("{} types", m.model.edge_gate_types)
        } else {
            "off".to_string()
        }
    );
    let mut total_nodes = 0usize;
    let mut adjacency_entries = 0usize;
    println!("{:<12} {:>10} {:>12} {:>10}", "section", "offset", "bytes", "crc32");
    for e in store.sections() {
        println!(
            "{:<12} {:>10} {:>12} {:>10}",
            e.name(),
            e.offset,
            e.len,
            format!("{:08x}", e.crc)
        );
        if e.id == SectionId::NodeTypes as u32 {
            total_nodes = e.len as usize / 4;
        }
        if e.id == SectionId::OutTargets as u32 {
            adjacency_entries = e.len as usize / 4;
        }
    }
    let edges = if m.directed { adjacency_entries } else { adjacency_entries / 2 };
    println!(
        "totals: {total_nodes} nodes, {edges} edges, views {}",
        store.views_json().map_or("absent".to_string(), |v| format!("{} bytes", v.len()))
    );
}

/// `gvex db <build|inspect>` — takes a positional subcommand (and for
/// `inspect` a positional file), so it dispatches before [`parse_flags`].
fn cmd_db(rest: &[String]) -> ExitCode {
    let Some((sub, rest)) = rest.split_first() else {
        usage();
    };
    match sub.as_str() {
        "build" => cmd_db_build(&parse_flags(rest)),
        "inspect" => {
            let path = rest.first().unwrap_or_else(|| usage());
            cmd_db_inspect(path);
        }
        other => {
            eprintln!("unknown db subcommand: {other}");
            usage();
        }
    }
    gvex::obs::report::emit();
    ExitCode::SUCCESS
}

/// `gvex obs diff old.json new.json [threshold flags]` — the perf-regression
/// gate. Takes positional file arguments, so it parses its own argv instead
/// of going through [`parse_flags`].
fn cmd_obs(rest: &[String]) -> ExitCode {
    use gvex::obs::diff::{compare, parse_report, Thresholds};
    let Some((sub, rest)) = rest.split_first() else {
        usage();
    };
    if sub != "diff" {
        eprintln!("unknown obs subcommand: {sub}");
        usage();
    }
    let (files, flag_args): (Vec<&String>, Vec<&String>) = {
        let mut files = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            if rest[i].starts_with("--") {
                flags.push(&rest[i]);
                if i + 1 < rest.len() && !rest[i + 1].starts_with("--") {
                    flags.push(&rest[i + 1]);
                    i += 1;
                }
            } else {
                files.push(&rest[i]);
            }
            i += 1;
        }
        (files, flags)
    };
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("obs diff takes exactly two report files");
        usage();
    };
    let mut thr = Thresholds::default();
    let mut i = 0;
    while i < flag_args.len() {
        let key = flag_args[i].as_str();
        let val = flag_args.get(i + 1).map(|s| s.as_str());
        let parsed_f64 = val.and_then(|v| v.parse::<f64>().ok());
        match key {
            "--span-pct" => thr.span_pct = parsed_f64.unwrap_or_else(|| usage()),
            "--counter-pct" => thr.counter_pct = parsed_f64.unwrap_or_else(|| usage()),
            "--p99-pct" => thr.p99_pct = parsed_f64.unwrap_or_else(|| usage()),
            "--min-span-ms" => thr.min_span_ms = parsed_f64.unwrap_or_else(|| usage()),
            "--min-counter" => {
                thr.min_counter = val.and_then(|v| v.parse::<u64>().ok()).unwrap_or_else(|| usage())
            }
            other => {
                eprintln!("unknown obs diff flag: {other}");
                usage();
            }
        }
        i += 2;
    }
    let load = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(2);
        });
        parse_report(&text).unwrap_or_else(|e| {
            eprintln!("failed to parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let old = load(old_path);
    let new = load(new_path);
    println!(
        "comparing {old_path} (schema v{}) -> {new_path} (schema v{})",
        old.schema_version, new.schema_version
    );
    let regressions = compare(&old, &new, &thr);
    if regressions.is_empty() {
        println!(
            "no regressions ({} spans, {} counters compared)",
            old.spans.len(),
            old.counters.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("{} regression(s):", regressions.len());
        for r in &regressions {
            println!("  {r}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    // `obs` takes positional arguments; dispatch it before the flag parser
    // (which rejects positionals) sees them.
    if cmd == "obs" {
        return cmd_obs(rest);
    }
    // `db` also takes positionals (the subcommand, inspect's file).
    if cmd == "db" {
        return cmd_db(rest);
    }
    // so does `ingest` (the subcommand).
    if cmd == "ingest" {
        return cmd_ingest(rest);
    }
    let flags = parse_flags(rest);
    match cmd.as_str() {
        "stats" => cmd_stats(&flags),
        "export" => cmd_export(&flags),
        "train" => cmd_train(&flags),
        "explain" => cmd_explain(&flags),
        "query" => cmd_query(&flags),
        "serve" => cmd_serve(&flags),
        "request" => cmd_request(&flags),
        _ => usage(),
    }
    // With GVEX_OBS=1: span tree to stderr, OBS_report.json to disk.
    gvex::obs::report::emit();
    ExitCode::SUCCESS
}
